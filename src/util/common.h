// Basic scalar typedefs shared across the library.
#ifndef FIRZEN_UTIL_COMMON_H_
#define FIRZEN_UTIL_COMMON_H_

#include <cstddef>
#include <cstdint>

namespace firzen {

/// Floating point type used throughout the numerical core. Double keeps
/// numerical gradient checks robust and is fast enough at the CPU scale this
/// library targets (see DESIGN.md §4).
using Real = double;

/// Index type for users, items, entities and matrix dimensions.
using Index = int64_t;

}  // namespace firzen

#endif  // FIRZEN_UTIL_COMMON_H_
