#include "src/util/table_printer.h"

#include <cstdio>
#include <sstream>

#include "src/util/check.h"

namespace firzen {

std::string FormatReal(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::BeginRow() { rows_.emplace_back(); }

void TablePrinter::AddCell(const std::string& value) {
  FIRZEN_CHECK(!rows_.empty());
  rows_.back().push_back(value);
}

void TablePrinter::AddCell(double value, int precision) {
  AddCell(FormatReal(value, precision));
}

void TablePrinter::AddRow(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      out << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };
  auto emit_rule = [&] {
    out << "+";
    for (size_t c = 0; c < widths.size(); ++c) {
      out << std::string(widths[c] + 2, '-') << "+";
    }
    out << "\n";
  };
  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return out.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string TablePrinter::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ",";
      out << row[c];
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace firzen
