// Environment-variable configuration helpers used by the benchmark harness
// (e.g. FIRZEN_BENCH_FULL=1 switches to the paper-scale profile).
#ifndef FIRZEN_UTIL_ENV_H_
#define FIRZEN_UTIL_ENV_H_

#include <string>

namespace firzen {

/// Returns the value of `name`, or `def` when unset/empty.
std::string GetEnvString(const std::string& name, const std::string& def);

/// Returns the integer value of `name`, or `def` when unset or unparsable.
long GetEnvInt(const std::string& name, long def);

/// Returns true when `name` is set to a truthy value (1/true/yes/on).
bool GetEnvBool(const std::string& name, bool def);

}  // namespace firzen

#endif  // FIRZEN_UTIL_ENV_H_
