// Clang thread-safety-analysis annotations and the annotated lock types the
// whole stack uses. Under Clang, -Wthread-safety turns lock discipline into
// a COMPILE-TIME check: every member annotated FIRZEN_GUARDED_BY must only
// be touched with its mutex held, every function annotated FIRZEN_REQUIRES
// must only be called with the capability held, and a forgotten unlock or an
// "optimistic" unlocked read fails the build (-DFIRZEN_WERROR=ON promotes it
// to an error). Under other compilers every macro expands to nothing and the
// wrappers below degrade to their std counterparts, so the annotations cost
// nothing off Clang.
//
// Policy (see docs/static_analysis.md): new mutex-guarded state uses
// firzen::Mutex + firzen::MutexLock + FIRZEN_GUARDED_BY, never a bare
// std::mutex — bare mutexes are invisible to the analysis. Condition waits
// go through firzen::CondVar with explicit `while (!predicate)` loops inside
// the annotated function (a predicate lambda would read guarded members in a
// scope the analysis cannot see into). FIRZEN_NO_THREAD_SAFETY_ANALYSIS is a
// last resort and must carry a justification comment.
#ifndef FIRZEN_UTIL_THREAD_ANNOTATIONS_H_
#define FIRZEN_UTIL_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define FIRZEN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FIRZEN_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a type as a capability (lockable). The string names the capability
/// kind in diagnostics ("mutex").
#define FIRZEN_CAPABILITY(x) FIRZEN_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability (or the reverse — see MutexUnlock).
#define FIRZEN_SCOPED_CAPABILITY FIRZEN_THREAD_ANNOTATION(scoped_lockable)

/// Data members: may only be read or written while holding `x`.
#define FIRZEN_GUARDED_BY(x) FIRZEN_THREAD_ANNOTATION(guarded_by(x))

/// Pointer members: the pointed-to data (not the pointer) is guarded by `x`.
#define FIRZEN_PT_GUARDED_BY(x) FIRZEN_THREAD_ANNOTATION(pt_guarded_by(x))

/// Functions: caller must hold the capability(ies) on entry (and still holds
/// them on exit).
#define FIRZEN_REQUIRES(...) \
  FIRZEN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Functions: acquires the capability(ies); caller must not already hold.
#define FIRZEN_ACQUIRE(...) \
  FIRZEN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Functions: releases the capability(ies); caller must hold them.
#define FIRZEN_RELEASE(...) \
  FIRZEN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Functions: acquires the capability iff the return value equals the first
/// argument.
#define FIRZEN_TRY_ACQUIRE(...) \
  FIRZEN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Functions: caller must NOT hold the capability(ies) (deadlock guard for
/// functions that acquire internally).
#define FIRZEN_EXCLUDES(...) FIRZEN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Functions returning a reference to a capability-guarded member.
#define FIRZEN_RETURN_CAPABILITY(x) FIRZEN_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Must carry a
/// justification comment at the use site.
#define FIRZEN_NO_THREAD_SAFETY_ANALYSIS \
  FIRZEN_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace firzen {

/// std::mutex with capability annotations. libstdc++'s std::mutex carries no
/// annotations, so locks taken through it are invisible to the analysis;
/// this wrapper is what makes FIRZEN_GUARDED_BY enforceable.
class FIRZEN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() FIRZEN_ACQUIRE() { mu_.lock(); }
  void Unlock() FIRZEN_RELEASE() { mu_.unlock(); }
  bool TryLock() FIRZEN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a Mutex (scoped capability). Keeps a std::unique_lock
/// underneath so CondVar can wait on it with std::condition_variable (no
/// condition_variable_any overhead).
class FIRZEN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FIRZEN_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() FIRZEN_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  friend class MutexUnlock;
  std::unique_lock<std::mutex> lock_;
};

/// Reverse-scoped capability: RELEASES the mutex on construction and
/// reacquires it on destruction. For the "drop the lock around a blocking
/// call" pattern (e.g. the admission dispatcher around its backend pass)
/// inside a FIRZEN_REQUIRES function — expressible to the analysis, unlike a
/// manual unlock/relock through a lock object passed across functions.
///
/// Operates on the raw mutex underneath `lock` and restores it before going
/// out of scope, so the outer MutexLock's state is consistent again by the
/// time anything can observe it. No exception may escape the unlocked region
/// (wrap the blocking call in try/catch), or the reacquire in the destructor
/// would run during unwinding with the result discarded.
class FIRZEN_SCOPED_CAPABILITY MutexUnlock {
 public:
  // `mu` exists for the annotation; off Clang it is intentionally unused.
  MutexUnlock(MutexLock& lock, [[maybe_unused]] Mutex& mu) FIRZEN_RELEASE(mu)
      : lock_(lock) {
    lock_.lock_.mutex()->unlock();
  }
  ~MutexUnlock() FIRZEN_ACQUIRE() { lock_.lock_.mutex()->lock(); }

  MutexUnlock(const MutexUnlock&) = delete;
  MutexUnlock& operator=(const MutexUnlock&) = delete;

 private:
  MutexLock& lock_;
};

/// Condition variable bound to MutexLock. Waits atomically release and
/// reacquire the lock, so from the analysis' point of view the capability is
/// held across the call — which is exactly the guarantee guarded members
/// need. Write wait loops as explicit `while (!predicate) cv.Wait(lock);`
/// inside the annotated function.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace firzen

#endif  // FIRZEN_UTIL_THREAD_ANNOTATIONS_H_
