// Fixed-width console table writer. The benchmark harness uses it to print
// tables in the same row/column layout as the paper.
#ifndef FIRZEN_UTIL_TABLE_PRINTER_H_
#define FIRZEN_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace firzen {

/// Accumulates rows of string cells and renders an aligned ASCII table.
/// Numeric convenience overloads format with a configurable precision,
/// matching the paper's percentage-points-with-2-decimals style.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Start a new row.
  void BeginRow();

  /// Append a string cell to the current row.
  void AddCell(const std::string& value);

  /// Append a numeric cell rendered with `precision` decimals.
  void AddCell(double value, int precision = 2);

  /// Convenience: add a full row at once.
  void AddRow(const std::vector<std::string>& cells);

  /// Render the table to a string.
  std::string ToString() const;

  /// Render and write to stdout.
  void Print() const;

  /// Render as comma-separated values (for piping into plotting tools).
  std::string ToCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimals.
std::string FormatReal(double value, int precision = 2);

}  // namespace firzen

#endif  // FIRZEN_UTIL_TABLE_PRINTER_H_
