// THE canonical ranking order, promoted to the util layer so EVERY layer —
// data generation, graph construction, evaluation, serving — can route its
// score sorts through one total order without an upward #include (the
// determinism linter bans raw comparator sorts on score floats; see
// tools/firzen_lint.py and docs/static_analysis.md). Historically this lived
// in src/eval/topk.h, which re-exports it unchanged.
#ifndef FIRZEN_UTIL_RANKING_H_
#define FIRZEN_UTIL_RANKING_H_

#include "src/util/common.h"

namespace firzen {

/// One scored candidate.
struct ScoredItem {
  Index item;
  Real score;
};

/// THE ranking total order: true when `a` ranks strictly before `b` —
/// descending score, ties broken by ascending item id. Item ids are unique
/// within a ranking, so this is a strict total order: any top-k selection
/// under it is a unique set in a unique order, no matter how the candidates
/// were partitioned or in which order they were offered. That property is
/// what makes per-shard top-k lists mergeable bit-exactly (MergeTopK in
/// src/eval/sharded_serving.h): every ranking path — TopKHeap, the sharded
/// merge, kNN/co-occurrence graph truncation, brute-force references in
/// tests — must compare through this one function. NaN never reaches it
/// (TopKHeap drops NaN pushes; a NaN here would break the strict weak
/// ordering).
inline bool RanksBefore(const ScoredItem& a, const ScoredItem& b) {
  return a.score != b.score ? a.score > b.score : a.item < b.item;
}

}  // namespace firzen

#endif  // FIRZEN_UTIL_RANKING_H_
