// Invariant checking macros for internal code paths. These abort on failure:
// a shape mismatch inside the tensor engine is a bug, not an error condition
// the caller could handle. Public APIs validate inputs and return Status.
#ifndef FIRZEN_UTIL_CHECK_H_
#define FIRZEN_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define FIRZEN_CHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "FIRZEN_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define FIRZEN_CHECK_MSG(cond, msg)                                          \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "FIRZEN_CHECK failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define FIRZEN_CHECK_EQ(a, b) FIRZEN_CHECK((a) == (b))
#define FIRZEN_CHECK_LT(a, b) FIRZEN_CHECK((a) < (b))
#define FIRZEN_CHECK_LE(a, b) FIRZEN_CHECK((a) <= (b))
#define FIRZEN_CHECK_GT(a, b) FIRZEN_CHECK((a) > (b))
#define FIRZEN_CHECK_GE(a, b) FIRZEN_CHECK((a) >= (b))

#endif  // FIRZEN_UTIL_CHECK_H_
