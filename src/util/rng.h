// Deterministic, seedable random number generation. All stochastic components
// (initialization, sampling, data generation) receive an Rng explicitly so
// experiments are reproducible end to end; there is no global RNG state.
#ifndef FIRZEN_UTIL_RNG_H_
#define FIRZEN_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "src/util/common.h"

namespace firzen {

/// xoshiro256** generator seeded via SplitMix64. Fast, high-quality, and
/// deterministic across platforms (unlike std::mt19937 distributions, whose
/// output is implementation-defined for e.g. std::normal_distribution).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform real in [0, 1).
  Real Uniform();

  /// Uniform real in [lo, hi).
  Real Uniform(Real lo, Real hi);

  /// Uniform integer in [0, n). Requires n > 0.
  Index UniformInt(Index n);

  /// Standard normal via Box-Muller (deterministic across platforms).
  Real Normal();

  /// Normal with the given mean and standard deviation.
  Real Normal(Real mean, Real stddev);

  /// Gumbel(0, 1) sample: -log(-log(U)).
  Real Gumbel();

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(Real p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (Index i = static_cast<Index>(v->size()) - 1; i > 0; --i) {
      Index j = UniformInt(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// k distinct values sampled uniformly from [0, n). Requires k <= n.
  std::vector<Index> SampleWithoutReplacement(Index n, Index k);

  /// Index sampled from unnormalized non-negative weights.
  Index SampleDiscrete(const std::vector<Real>& weights);

  /// Deterministically derive an independent child generator (for parallel
  /// or per-component streams).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_spare_normal_ = false;
  Real spare_normal_ = 0.0;
};

}  // namespace firzen

#endif  // FIRZEN_UTIL_RNG_H_
