// Small fixed-size thread pool with a ParallelFor helper used by the kNN
// graph builder, the all-ranking evaluator, and dense kernels. Work items are
// static range shards, so results are deterministic regardless of pool size.
#ifndef FIRZEN_UTIL_THREAD_POOL_H_
#define FIRZEN_UTIL_THREAD_POOL_H_

#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "src/util/common.h"
#include "src/util/thread_annotations.h"

namespace firzen {

/// Fixed-size worker pool. Tasks are void() closures; Wait() blocks until all
/// submitted tasks finish. Construction with num_threads <= 1 degenerates to
/// inline execution (useful for tests and debugging).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for execution.
  void Submit(std::function<void()> task) FIRZEN_EXCLUDES(mu_);

  /// Block until all submitted tasks have completed.
  void Wait() FIRZEN_EXCLUDES(mu_);

  int num_threads() const { return num_threads_; }

  /// Shared process-wide pool. Sized by FIRZEN_NUM_THREADS when set to a
  /// positive value, otherwise by the hardware concurrency. Lazily
  /// constructed; safe for concurrent first use.
  static ThreadPool* Global();

  /// True when the calling thread is a pool worker. ParallelFor uses this to
  /// run nested parallel sections inline instead of deadlocking on Wait().
  static bool InWorker();

 private:
  void WorkerLoop();

  int num_threads_;
  std::vector<std::thread> workers_;
  Mutex mu_;
  std::queue<std::function<void()>> tasks_ FIRZEN_GUARDED_BY(mu_);
  CondVar task_cv_;
  CondVar done_cv_;
  int in_flight_ FIRZEN_GUARDED_BY(mu_) = 0;
  bool stop_ FIRZEN_GUARDED_BY(mu_) = false;
};

/// Splits [0, n) into contiguous shards and runs `fn(begin, end)` on the pool.
/// Executes inline when pool is null, n is small, or the caller is itself a
/// pool worker (nested parallelism degrades to serial instead of
/// deadlocking). Shard boundaries never split an index, so kernels whose
/// per-index work is order-independent produce bit-identical results for any
/// pool size.
void ParallelFor(ThreadPool* pool, Index n,
                 const std::function<void(Index, Index)>& fn,
                 Index min_shard_size = 256);

/// Thread count ThreadPool::Global() will use: FIRZEN_NUM_THREADS when set to
/// a positive value, else std::thread::hardware_concurrency() (min 1).
int GlobalPoolThreadCount();

}  // namespace firzen

#endif  // FIRZEN_UTIL_THREAD_POOL_H_
