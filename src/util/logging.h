// Minimal leveled logging. Training loops log per-epoch progress at INFO;
// benches silence it via SetLogLevel unless FIRZEN_VERBOSE=1.
#ifndef FIRZEN_UTIL_LOGGING_H_
#define FIRZEN_UTIL_LOGGING_H_

#include <string>

namespace firzen {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is emitted.
void SetLogLevel(LogLevel level);

/// Current minimum level.
LogLevel GetLogLevel();

/// Emit a log line ("[LEVEL] message") to stderr when level >= the minimum.
void Log(LogLevel level, const std::string& message);

/// printf-style logging convenience.
void Logf(LogLevel level, const char* fmt, ...);

}  // namespace firzen

#endif  // FIRZEN_UTIL_LOGGING_H_
