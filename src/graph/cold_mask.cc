#include "src/graph/cold_mask.h"

#include "src/util/check.h"

namespace firzen {

CsrMatrix ApplyColdStartMask(const CsrMatrix& item_item,
                             const std::vector<bool>& is_cold_item) {
  FIRZEN_CHECK_EQ(item_item.rows(),
                  static_cast<Index>(is_cold_item.size()));
  FIRZEN_CHECK_EQ(item_item.rows(), item_item.cols());
  return item_item.Filtered([&is_cold_item](Index row, Index col) {
    const bool row_warm = !is_cold_item[static_cast<size_t>(row)];
    const bool col_cold = is_cold_item[static_cast<size_t>(col)];
    return !(row_warm && col_cold);
  });
}

}  // namespace firzen
