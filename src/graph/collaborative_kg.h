// Collaborative knowledge graph (paper §III-B.1, following KGAT): the
// user-item interaction graph is merged with the item KG into one relational
// graph. Entity layout: [KG entities (items first) | users]. Each interaction
// becomes a (user, Interact, item) triplet; reverse edges get distinct
// relation ids so attention can differentiate direction.
#ifndef FIRZEN_GRAPH_COLLABORATIVE_KG_H_
#define FIRZEN_GRAPH_COLLABORATIVE_KG_H_

#include <vector>

#include "src/data/dataset.h"
#include "src/tensor/csr.h"

namespace firzen {

/// Frozen collaborative KG with per-edge relation ids aligned to the CSR
/// storage order (multigraph: parallel edges with different relations kept).
struct CollaborativeKg {
  Index num_entities = 0;     // num_kg_entities + num_users
  Index num_relations = 0;    // 2 * (R + 1): forward + Interact + reverses
  Index num_users = 0;
  Index num_items = 0;
  Index num_kg_entities = 0;  // items are entities [0, num_items)

  /// All triplets over CKG entity ids (including reverse edges).
  std::vector<Triplet> triplets;

  /// Head-major topology; stored entry p corresponds to triplets[p].
  CsrMatrix topology;

  /// Relation id of stored edge p (size nnz), aligned with `topology`.
  std::vector<Index> edge_relation;

  Index ItemEntity(Index item) const { return item; }
  Index UserEntity(Index user) const { return num_kg_entities + user; }
  /// Relation id of the user->item Interact edges.
  Index InteractRelation() const { return (num_relations / 2) - 1; }
};

/// Builds the frozen CKG from training interactions and the item KG.
/// Reverse triplets are always added (relation r -> r + R + 1).
CollaborativeKg BuildCollaborativeKg(
    const std::vector<Interaction>& interactions, Index num_users,
    const KnowledgeGraph& kg);

}  // namespace firzen

#endif  // FIRZEN_GRAPH_COLLABORATIVE_KG_H_
