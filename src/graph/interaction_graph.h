// User-item interaction graph construction (paper §II and Eqs. 5-6).
#ifndef FIRZEN_GRAPH_INTERACTION_GRAPH_H_
#define FIRZEN_GRAPH_INTERACTION_GRAPH_H_

#include <vector>

#include "src/data/dataset.h"
#include "src/tensor/csr.h"

namespace firzen {

/// Symmetrically normalized bipartite adjacency over the joint node set
/// [users | items] (shape (U+I) x (U+I)):
///   A = [[0, R], [R^T, 0]],   Â = D^{-1/2} A D^{-1/2}
/// This is the LightGCN propagation operator; strict cold items have zero
/// degree and therefore stay zero vectors under propagation (paper §III-C.1).
CsrMatrix BuildNormalizedInteractionGraph(
    const std::vector<Interaction>& interactions, Index num_users,
    Index num_items);

/// Row-normalized user->item matrix (U x I): row u averages u's items.
/// Used by the modality-aware convolution (Eq. 7).
CsrMatrix BuildUserToItemGraph(const std::vector<Interaction>& interactions,
                               Index num_users, Index num_items);

/// Row-normalized item->user matrix (I x U): row i averages i's users
/// (Eq. 8). Transpose counterpart of BuildUserToItemGraph.
CsrMatrix BuildItemToUserGraph(const std::vector<Interaction>& interactions,
                               Index num_users, Index num_items);

/// Â with a fraction of edges dropped (used by SGL's graph augmentation;
/// NOT used by Firzen whose graphs are frozen). Each undirected interaction
/// edge is kept with probability (1 - drop_rate); the result is renormalized.
CsrMatrix BuildDroppedInteractionGraph(
    const std::vector<Interaction>& interactions, Index num_users,
    Index num_items, Real drop_rate, Rng* rng);

}  // namespace firzen

#endif  // FIRZEN_GRAPH_INTERACTION_GRAPH_H_
