// Strict cold-start inference mask (paper §III-F, Eqs. 34-35): at inference
// the item-item graphs are rebuilt over ALL items, but information must not
// propagate FROM strict cold items INTO warm items:
//   M(a, b) = 0  iff  a is warm and b is cold;  Ĝ = G̃ ⊙ M.
// Cold rows still aggregate from warm columns — that is the warm->cold
// transfer that "fires" the cold items.
#ifndef FIRZEN_GRAPH_COLD_MASK_H_
#define FIRZEN_GRAPH_COLD_MASK_H_

#include <vector>

#include "src/tensor/csr.h"

namespace firzen {

/// Applies the Eq. 34 mask to an (unnormalized) item-item adjacency: removes
/// every edge whose source row is warm and whose neighbor column is cold.
CsrMatrix ApplyColdStartMask(const CsrMatrix& item_item,
                             const std::vector<bool>& is_cold_item);

}  // namespace firzen

#endif  // FIRZEN_GRAPH_COLD_MASK_H_
