#include "src/graph/collaborative_kg.h"

#include <algorithm>

#include "src/util/check.h"

namespace firzen {

CollaborativeKg BuildCollaborativeKg(
    const std::vector<Interaction>& interactions, Index num_users,
    const KnowledgeGraph& kg) {
  kg.CheckValid();
  CollaborativeKg ckg;
  ckg.num_users = num_users;
  ckg.num_items = kg.num_items;
  ckg.num_kg_entities = kg.num_entities;
  ckg.num_entities = kg.num_entities + num_users;
  // Forward relations: [0, R) from the KG, Interact = R.
  // Reverse relations: forward id + (R + 1).
  const Index r_base = kg.num_relations;
  ckg.num_relations = 2 * (r_base + 1);
  const Index interact = r_base;

  ckg.triplets.reserve(2 * (kg.triplets.size() + interactions.size()));
  for (const Triplet& t : kg.triplets) {
    ckg.triplets.push_back(t);
    ckg.triplets.push_back({t.tail, t.relation + r_base + 1, t.head});
  }
  for (const Interaction& x : interactions) {
    const Index ue = ckg.UserEntity(x.user);
    const Index ie = ckg.ItemEntity(x.item);
    ckg.triplets.push_back({ue, interact, ie});
    ckg.triplets.push_back({ie, interact + r_base + 1, ue});
  }

  // Group triplets by head so the CSR storage order matches exactly.
  std::stable_sort(ckg.triplets.begin(), ckg.triplets.end(),
                   [](const Triplet& a, const Triplet& b) {
                     return a.head < b.head;
                   });
  std::vector<CooEntry> entries;
  entries.reserve(ckg.triplets.size());
  ckg.edge_relation.reserve(ckg.triplets.size());
  for (const Triplet& t : ckg.triplets) {
    entries.push_back({t.head, t.tail, 1.0});
    ckg.edge_relation.push_back(t.relation);
  }
  ckg.topology = CsrMatrix::FromCooNoMerge(ckg.num_entities, ckg.num_entities,
                                           std::move(entries));
  FIRZEN_CHECK_EQ(ckg.topology.nnz(),
                  static_cast<Index>(ckg.edge_relation.size()));
  return ckg;
}

}  // namespace firzen
