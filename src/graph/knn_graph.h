// Modality-specific item-item relation graph (paper §III-B.2, Eqs. 1-3):
// cosine similarity over raw modality features, kNN sparsification to an
// unweighted graph, then symmetric degree normalization. Frozen after build.
#ifndef FIRZEN_GRAPH_KNN_GRAPH_H_
#define FIRZEN_GRAPH_KNN_GRAPH_H_

#include <vector>

#include "src/tensor/csr.h"
#include "src/tensor/matrix.h"
#include "src/util/thread_pool.h"

namespace firzen {

struct KnnGraphOptions {
  /// Neighbors kept per row (paper's K, Fig. 6d sweeps {5, 10, 15, 20}).
  Index top_k = 10;
  /// When non-empty, restricts which rows may appear as *neighbors*
  /// (columns). Training graphs pass the warm item list here so cold items
  /// cannot leak into training (paper §III-B.2: "In the training phase, the
  /// item-item graph is built on all warm-start items").
  std::vector<Index> candidate_items;
  /// When non-empty, only these rows get neighbor lists (others stay empty).
  std::vector<Index> query_items;
  /// Thread pool for the O(n^2 d) similarity scan; null = single-threaded.
  ThreadPool* pool = nullptr;
};

/// Returns the kNN adjacency *before* normalization: entry (a, b) = 1 iff b
/// is among a's top-K cosine neighbors (Eq. 2). Self-loops are excluded.
CsrMatrix BuildItemKnnAdjacency(const Matrix& features,
                                const KnnGraphOptions& options);

/// Eq. 3: D^{-1/2} G̃ D^{-1/2} over the unweighted kNN adjacency.
CsrMatrix BuildItemItemGraph(const Matrix& features,
                             const KnnGraphOptions& options);

}  // namespace firzen

#endif  // FIRZEN_GRAPH_KNN_GRAPH_H_
