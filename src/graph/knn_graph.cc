#include "src/graph/knn_graph.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/ranking.h"
#include "src/util/thread_annotations.h"

namespace firzen {
namespace {

// Row-normalized copy so cosine similarity reduces to a dot product.
Matrix L2NormalizedRows(const Matrix& features) {
  Matrix out = features;
  for (Index r = 0; r < out.rows(); ++r) {
    const Real norm = out.RowNorm(r);
    if (norm <= 1e-12) continue;
    Real* row = out.row(r);
    for (Index c = 0; c < out.cols(); ++c) row[c] /= norm;
  }
  return out;
}

}  // namespace

CsrMatrix BuildItemKnnAdjacency(const Matrix& features,
                                const KnnGraphOptions& options) {
  const Index n = features.rows();
  const Index d = features.cols();
  FIRZEN_CHECK_GT(options.top_k, 0);

  std::vector<Index> candidates = options.candidate_items;
  if (candidates.empty()) {
    candidates.resize(static_cast<size_t>(n));
    for (Index i = 0; i < n; ++i) candidates[static_cast<size_t>(i)] = i;
  }
  std::vector<Index> queries = options.query_items;
  if (queries.empty()) {
    queries.resize(static_cast<size_t>(n));
    for (Index i = 0; i < n; ++i) queries[static_cast<size_t>(i)] = i;
  }

  const Matrix normalized = L2NormalizedRows(features);
  const Index k =
      std::min<Index>(options.top_k, static_cast<Index>(candidates.size()) - 1);
  FIRZEN_CHECK_GT(k, 0);

  std::vector<CooEntry> entries;
  Mutex entries_mu;

  ParallelFor(
      options.pool, static_cast<Index>(queries.size()),
      [&](Index begin, Index end) {
        std::vector<ScoredItem> scored;
        std::vector<CooEntry> local;
        for (Index qi = begin; qi < end; ++qi) {
          const Index a = queries[static_cast<size_t>(qi)];
          const Real* arow = normalized.row(a);
          scored.clear();
          scored.reserve(candidates.size());
          for (Index b : candidates) {
            if (b == a) continue;
            const Real* brow = normalized.row(b);
            Real sim = 0.0;
            for (Index c = 0; c < d; ++c) sim += arow[c] * brow[c];
            scored.push_back({b, sim});
          }
          const size_t keep =
              std::min<size_t>(static_cast<size_t>(k), scored.size());
          std::partial_sort(scored.begin(), scored.begin() + keep,
                            scored.end(), RanksBefore);
          for (size_t j = 0; j < keep; ++j) {
            local.push_back({a, scored[j].item, 1.0});
          }
        }
        MutexLock lock(entries_mu);
        entries.insert(entries.end(), local.begin(), local.end());
      });

  return CsrMatrix::FromCoo(n, n, std::move(entries));
}

CsrMatrix BuildItemItemGraph(const Matrix& features,
                             const KnnGraphOptions& options) {
  return BuildItemKnnAdjacency(features, options).SymNormalized();
}

}  // namespace firzen
