// User-user co-occurrence graph (paper §III-B.3, Eq. 4): edge weight is the
// number of commonly interacted items; each user keeps its top-K neighbors.
// Message passing uses a per-row softmax over these counts (Eq. 19).
#ifndef FIRZEN_GRAPH_COOCCURRENCE_GRAPH_H_
#define FIRZEN_GRAPH_COOCCURRENCE_GRAPH_H_

#include <vector>

#include "src/data/dataset.h"
#include "src/tensor/csr.h"

namespace firzen {

/// Top-K user-user co-occurrence adjacency with raw common-item counts as
/// values (Eq. 4). Users with no co-occurring peer have an empty row.
CsrMatrix BuildUserCooccurrenceGraph(
    const std::vector<Interaction>& interactions, Index num_users,
    Index num_items, Index top_k);

}  // namespace firzen

#endif  // FIRZEN_GRAPH_COOCCURRENCE_GRAPH_H_
