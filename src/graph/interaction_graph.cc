#include "src/graph/interaction_graph.h"

#include <cmath>

#include "src/util/check.h"

namespace firzen {
namespace {

// Deduplicated undirected bipartite COO entries over the joint node space.
std::vector<CooEntry> BipartiteEntries(
    const std::vector<Interaction>& interactions, Index num_users,
    Index num_items) {
  std::vector<CooEntry> entries;
  entries.reserve(interactions.size() * 2);
  for (const Interaction& x : interactions) {
    FIRZEN_CHECK_LT(x.user, num_users);
    FIRZEN_CHECK_LT(x.item, num_items);
    entries.push_back({x.user, num_users + x.item, 1.0});
    entries.push_back({num_users + x.item, x.user, 1.0});
  }
  return entries;
}

// Clamp duplicate-interaction weights back to binary {0, 1}.
CsrMatrix Binarized(CsrMatrix m) {
  std::vector<CooEntry> entries;
  entries.reserve(static_cast<size_t>(m.nnz()));
  for (Index r = 0; r < m.rows(); ++r) {
    for (Index p = m.row_ptr()[r]; p < m.row_ptr()[r + 1]; ++p) {
      entries.push_back({r, m.col_idx()[static_cast<size_t>(p)], 1.0});
    }
  }
  return CsrMatrix::FromCoo(m.rows(), m.cols(), std::move(entries));
}

}  // namespace

CsrMatrix BuildNormalizedInteractionGraph(
    const std::vector<Interaction>& interactions, Index num_users,
    Index num_items) {
  const Index n = num_users + num_items;
  CsrMatrix adj = Binarized(CsrMatrix::FromCoo(
      n, n, BipartiteEntries(interactions, num_users, num_items)));
  return adj.SymNormalized();
}

CsrMatrix BuildUserToItemGraph(const std::vector<Interaction>& interactions,
                               Index num_users, Index num_items) {
  std::vector<CooEntry> entries;
  entries.reserve(interactions.size());
  for (const Interaction& x : interactions) {
    entries.push_back({x.user, x.item, 1.0});
  }
  CsrMatrix m =
      Binarized(CsrMatrix::FromCoo(num_users, num_items, std::move(entries)));
  // Eq. 7 normalizes by sqrt(|N_u|); using 1/sqrt(deg) per row mirrors the
  // paper's asymmetric normalization.
  std::vector<CooEntry> normalized;
  normalized.reserve(static_cast<size_t>(m.nnz()));
  for (Index r = 0; r < m.rows(); ++r) {
    const Index deg = m.RowNnz(r);
    if (deg == 0) continue;
    const Real w = 1.0 / std::sqrt(static_cast<Real>(deg));
    for (Index p = m.row_ptr()[r]; p < m.row_ptr()[r + 1]; ++p) {
      normalized.push_back({r, m.col_idx()[static_cast<size_t>(p)], w});
    }
  }
  return CsrMatrix::FromCoo(num_users, num_items, std::move(normalized));
}

CsrMatrix BuildItemToUserGraph(const std::vector<Interaction>& interactions,
                               Index num_users, Index num_items) {
  std::vector<Interaction> flipped;
  flipped.reserve(interactions.size());
  for (const Interaction& x : interactions) {
    flipped.push_back({x.item, x.user});
  }
  return BuildUserToItemGraph(flipped, num_items, num_users);
}

CsrMatrix BuildDroppedInteractionGraph(
    const std::vector<Interaction>& interactions, Index num_users,
    Index num_items, Real drop_rate, Rng* rng) {
  FIRZEN_CHECK(rng != nullptr);
  std::vector<Interaction> kept;
  kept.reserve(interactions.size());
  for (const Interaction& x : interactions) {
    if (!rng->Bernoulli(drop_rate)) kept.push_back(x);
  }
  return BuildNormalizedInteractionGraph(kept, num_users, num_items);
}

}  // namespace firzen
