#include "src/graph/cooccurrence_graph.h"

#include <algorithm>
#include <unordered_map>

#include "src/util/check.h"

namespace firzen {

CsrMatrix BuildUserCooccurrenceGraph(
    const std::vector<Interaction>& interactions, Index num_users,
    Index num_items, Index top_k) {
  FIRZEN_CHECK_GT(top_k, 0);
  // Users per item (deduplicated).
  std::vector<std::vector<Index>> users_by_item(
      static_cast<size_t>(num_items));
  std::vector<std::vector<Index>> items_by_user(
      static_cast<size_t>(num_users));
  for (const Interaction& x : interactions) {
    users_by_item[static_cast<size_t>(x.item)].push_back(x.user);
    items_by_user[static_cast<size_t>(x.user)].push_back(x.item);
  }
  for (auto& v : users_by_item) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  for (auto& v : items_by_user) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }

  std::vector<CooEntry> entries;
  std::unordered_map<Index, Index> counts;
  for (Index u = 0; u < num_users; ++u) {
    counts.clear();
    for (Index item : items_by_user[static_cast<size_t>(u)]) {
      for (Index peer : users_by_item[static_cast<size_t>(item)]) {
        if (peer != u) ++counts[peer];
      }
    }
    if (counts.empty()) continue;
    // Hash order is immediately erased by the strict total order below
    // (count desc, peer id asc — peer ids are unique), so the kept prefix
    // is identical for any iteration order.
    // firzen-lint: allow(unordered-iteration)
    std::vector<std::pair<Index, Index>> scored(counts.begin(), counts.end());
    const size_t keep =
        std::min<size_t>(static_cast<size_t>(top_k), scored.size());
    // Integer co-occurrence counts, not float scores: (count desc, id asc)
    // is already a strict total order, RanksBefore does not apply.
    // firzen-lint: allow(raw-sort)
    std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                      [](const auto& a, const auto& b) {
                        return a.second != b.second ? a.second > b.second
                                                    : a.first < b.first;
                      });
    for (size_t j = 0; j < keep; ++j) {
      entries.push_back(
          {u, scored[j].first, static_cast<Real>(scored[j].second)});
    }
  }
  return CsrMatrix::FromCoo(num_users, num_users, std::move(entries));
}

}  // namespace firzen
