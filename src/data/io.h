// TSV serialization so users can bring their own data (see
// examples/custom_dataset.cc). Formats:
//   interactions: "user<TAB>item" per line
//   features:     "item<TAB>v0,v1,..." per line
//   kg:           "head<TAB>relation<TAB>tail" per line
#ifndef FIRZEN_DATA_IO_H_
#define FIRZEN_DATA_IO_H_

#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/util/status.h"

namespace firzen {

/// Parses "user<TAB>item" lines. Ids must be non-negative integers.
Result<std::vector<Interaction>> LoadInteractionsTsv(const std::string& path);

/// Writes interactions in the same format.
Status SaveInteractionsTsv(const std::string& path,
                           const std::vector<Interaction>& interactions);

/// Parses an "item<TAB>comma-separated-floats" feature table. All rows must
/// share one dimension; items absent from the file get zero rows.
Result<Matrix> LoadFeaturesTsv(const std::string& path, Index num_items);

/// Writes a feature table in the same format.
Status SaveFeaturesTsv(const std::string& path, const Matrix& features);

/// Parses "head<TAB>relation<TAB>tail" triplets; entity/relation counts are
/// inferred as max id + 1, then overridden upward by the optional minimums.
Result<KnowledgeGraph> LoadKgTsv(const std::string& path, Index num_items,
                                 Index min_entities = 0,
                                 Index min_relations = 0);

/// Writes triplets in the same format.
Status SaveKgTsv(const std::string& path, const KnowledgeGraph& kg);

}  // namespace firzen

#endif  // FIRZEN_DATA_IO_H_
