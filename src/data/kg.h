// Knowledge graph container. Entity ids are globally indexed with the
// convention that the first `num_items` entity ids are the catalog items
// themselves (the paper's item-entity alignment).
#ifndef FIRZEN_DATA_KG_H_
#define FIRZEN_DATA_KG_H_

#include <string>
#include <vector>

#include "src/util/common.h"

namespace firzen {

/// One (head, relation, tail) fact.
struct Triplet {
  Index head;
  Index relation;
  Index tail;

  bool operator==(const Triplet& other) const {
    return head == other.head && relation == other.relation &&
           tail == other.tail;
  }
};

/// Entity types mirroring the constructed Amazon KGs (paper Fig. 5).
enum class EntityType : int8_t {
  kItem = 0,
  kFeature = 1,
  kBrand = 2,
  kCategory = 3,
};

/// Relation names used by the synthetic KG builder (paper Fig. 5).
enum KgRelation : Index {
  kDescribedBy = 0,   // item -> feature
  kProducedBy = 1,    // item -> brand
  kBelongTo = 2,      // item -> category
  kAlsoBought = 3,    // item -> item
  kAlsoViewed = 4,    // item -> item
  kBoughtTogether = 5,  // item -> item
  kNumBaseRelations = 6,
};

/// External knowledge organized as triplets over typed entities.
struct KnowledgeGraph {
  Index num_entities = 0;   // first num_items ids are items
  Index num_items = 0;      // item-entity alignment prefix
  Index num_relations = 0;
  std::vector<Triplet> triplets;
  /// Optional per-entity type tag (size num_entities); used by the noise
  /// injector to generate type-consistent "discrepancy" corruptions.
  std::vector<EntityType> entity_type;

  /// Validates index ranges; aborts on malformed graphs.
  void CheckValid() const;
};

}  // namespace firzen

#endif  // FIRZEN_DATA_KG_H_
