#include "src/data/io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace firzen {
namespace {

Status OpenFailed(const std::string& path) {
  return Status::IOError("cannot open " + path);
}

}  // namespace

Result<std::vector<Interaction>> LoadInteractionsTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return OpenFailed(path);
  std::vector<Interaction> out;
  std::string line;
  Index line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    long long user = -1;
    long long item = -1;
    if (!(ss >> user >> item) || user < 0 || item < 0) {
      return Status::InvalidArgument(path + ": malformed line " +
                                     std::to_string(line_no));
    }
    out.push_back({static_cast<Index>(user), static_cast<Index>(item)});
  }
  return out;
}

Status SaveInteractionsTsv(const std::string& path,
                           const std::vector<Interaction>& interactions) {
  std::ofstream out(path);
  if (!out) return OpenFailed(path);
  for (const Interaction& x : interactions) {
    out << x.user << '\t' << x.item << '\n';
  }
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

Result<Matrix> LoadFeaturesTsv(const std::string& path, Index num_items) {
  std::ifstream in(path);
  if (!in) return OpenFailed(path);
  std::string line;
  Index dim = -1;
  std::vector<std::pair<Index, std::vector<Real>>> rows;
  Index line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return Status::InvalidArgument(path + ": malformed line " +
                                     std::to_string(line_no));
    }
    const Index item = static_cast<Index>(std::stoll(line.substr(0, tab)));
    if (item < 0 || item >= num_items) {
      return Status::OutOfRange(path + ": item id out of range at line " +
                                std::to_string(line_no));
    }
    std::vector<Real> values;
    std::istringstream ss(line.substr(tab + 1));
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      values.push_back(std::stod(cell));
    }
    if (dim < 0) {
      dim = static_cast<Index>(values.size());
    } else if (dim != static_cast<Index>(values.size())) {
      return Status::InvalidArgument(path + ": inconsistent dimension at line " +
                                     std::to_string(line_no));
    }
    rows.emplace_back(item, std::move(values));
  }
  if (dim <= 0) return Status::InvalidArgument(path + ": no feature rows");
  Matrix features(num_items, dim);
  for (const auto& [item, values] : rows) {
    for (Index c = 0; c < dim; ++c) {
      features(item, c) = values[static_cast<size_t>(c)];
    }
  }
  return features;
}

Status SaveFeaturesTsv(const std::string& path, const Matrix& features) {
  std::ofstream out(path);
  if (!out) return OpenFailed(path);
  for (Index r = 0; r < features.rows(); ++r) {
    out << r << '\t';
    for (Index c = 0; c < features.cols(); ++c) {
      if (c > 0) out << ',';
      out << features(r, c);
    }
    out << '\n';
  }
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

Result<KnowledgeGraph> LoadKgTsv(const std::string& path, Index num_items,
                                 Index min_entities, Index min_relations) {
  std::ifstream in(path);
  if (!in) return OpenFailed(path);
  KnowledgeGraph kg;
  kg.num_items = num_items;
  std::string line;
  Index line_no = 0;
  Index max_entity = num_items - 1;
  Index max_relation = -1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    long long h = -1;
    long long r = -1;
    long long t = -1;
    if (!(ss >> h >> r >> t) || h < 0 || r < 0 || t < 0) {
      return Status::InvalidArgument(path + ": malformed line " +
                                     std::to_string(line_no));
    }
    kg.triplets.push_back({static_cast<Index>(h), static_cast<Index>(r),
                           static_cast<Index>(t)});
    max_entity = std::max<Index>(max_entity, std::max<Index>(h, t));
    max_relation = std::max<Index>(max_relation, static_cast<Index>(r));
  }
  kg.num_entities = std::max(min_entities, max_entity + 1);
  kg.num_relations = std::max(min_relations, max_relation + 1);
  kg.CheckValid();
  return kg;
}

Status SaveKgTsv(const std::string& path, const KnowledgeGraph& kg) {
  std::ofstream out(path);
  if (!out) return OpenFailed(path);
  for (const Triplet& t : kg.triplets) {
    out << t.head << '\t' << t.relation << '\t' << t.tail << '\n';
  }
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

}  // namespace firzen
