// The central dataset container: interactions with strict cold-start splits,
// multi-modal item features and the item knowledge graph.
#ifndef FIRZEN_DATA_DATASET_H_
#define FIRZEN_DATA_DATASET_H_

#include <string>
#include <vector>

#include "src/data/kg.h"
#include "src/tensor/matrix.h"
#include "src/util/common.h"

namespace firzen {

/// One observed user-item interaction (implicit feedback).
struct Interaction {
  Index user;
  Index item;
};

/// A named per-item dense feature table (one modality).
struct Modality {
  std::string name;       // "text" or "image"
  Matrix features;        // num_items x dim, row i = raw features of item i
};

/// Recommendation dataset with the paper's strict cold-start arrangement:
///   * 20% of items are strict cold: they appear in NO training interaction
///     and their held-out interactions form cold validation/test sets.
///   * Warm interactions are split 8:1:1 into train / warm-val / warm-test.
/// For the normal cold-start protocol (Table VI) the cold sets are further
/// split into `known` links (revealed at inference) and `unknown` targets.
struct Dataset {
  std::string name;
  Index num_users = 0;
  Index num_items = 0;

  std::vector<Interaction> train;
  std::vector<Interaction> warm_val;
  std::vector<Interaction> warm_test;
  std::vector<Interaction> cold_val;
  std::vector<Interaction> cold_test;

  /// Normal cold-start extension: interaction links of cold items revealed
  /// at inference time (empty under the strict protocol).
  std::vector<Interaction> cold_known;

  /// is_cold_item[i] == true iff item i is a strict cold-start item.
  std::vector<bool> is_cold_item;

  std::vector<Modality> modalities;
  KnowledgeGraph kg;

  // ---- Derived helpers ----

  /// Items with is_cold_item == false.
  std::vector<Index> WarmItems() const;

  /// Items with is_cold_item == true.
  std::vector<Index> ColdItems() const;

  /// Per-user sorted unique train item lists (size num_users).
  std::vector<std::vector<Index>> TrainItemsByUser() const;

  /// Per-item sorted unique train user lists (size num_items).
  std::vector<std::vector<Index>> TrainUsersByItem() const;

  /// Pointer to the modality with the given name, or nullptr.
  const Modality* FindModality(const std::string& name) const;

  /// Sanity checks on all invariants (cold items absent from train, index
  /// ranges, feature table shapes). Aborts on violation.
  void CheckValid() const;
};

}  // namespace firzen

#endif  // FIRZEN_DATA_DATASET_H_
