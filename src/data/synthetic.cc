#include "src/data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "src/data/split.h"
#include "src/data/synthetic_kg.h"
#include "src/util/check.h"
#include "src/util/ranking.h"

namespace firzen {
namespace {

Index Poisson(Real mean, Rng* rng) {
  // Knuth's method; fine for the small means used here.
  const Real l = std::exp(-mean);
  Index k = 0;
  Real p = 1.0;
  do {
    ++k;
    p *= rng->Uniform();
  } while (p > l);
  return k - 1;
}

Index ScaledCount(Index base, Real scale) {
  return std::max<Index>(8, static_cast<Index>(base * scale));
}

}  // namespace

SyntheticConfig BeautySConfig(Real scale) {
  SyntheticConfig c;
  c.name = "Beauty-S";
  c.num_users = ScaledCount(1500, scale);
  c.num_items = ScaledCount(800, scale);
  c.mean_interactions_per_user = 9.0;
  c.num_clusters = 12;
  c.num_brands = 60;
  c.num_categories = 12;
  c.num_feature_words = 400;
  c.seed = 101;
  return c;
}

SyntheticConfig CellPhonesSConfig(Real scale) {
  SyntheticConfig c;
  c.name = "CellPhones-S";
  c.num_users = ScaledCount(1800, scale);
  c.num_items = ScaledCount(700, scale);
  c.mean_interactions_per_user = 7.0;
  c.num_clusters = 10;
  c.num_brands = 40;
  c.num_categories = 8;
  c.num_feature_words = 320;
  c.seed = 202;
  return c;
}

SyntheticConfig ClothingSConfig(Real scale) {
  SyntheticConfig c;
  c.name = "Clothing-S";
  c.num_users = ScaledCount(2200, scale);
  c.num_items = ScaledCount(1300, scale);
  c.mean_interactions_per_user = 7.0;
  c.num_clusters = 16;
  c.num_brands = 90;
  c.num_categories = 18;
  c.num_feature_words = 520;
  // Clothing is the sparsest Amazon subset and the most visually driven.
  c.visual_cluster_share = 0.6;
  c.visual_noise = 0.6;
  c.seed = 303;
  return c;
}

SyntheticConfig WeixinSportsSConfig(Real scale) {
  SyntheticConfig c;
  c.name = "WeixinSports-S";
  c.num_users = ScaledCount(3000, scale);
  c.num_items = ScaledCount(820, scale);
  c.mean_interactions_per_user = 12.6;
  c.num_clusters = 14;
  // Pre-fused compact embeddings (the industrial dataset ships 64-d).
  c.visual_dim = 64;
  c.text_dim = 64;
  c.num_brands = 50;
  c.num_categories = 10;
  c.num_feature_words = 260;
  // WikiSports one-hop subgraph: many relation types, low noise
  // ("WikiSports entities are closely related to sports, minimizing noisy
  //  knowledge", §IV-A.1).
  c.relation_split = 5;  // 6 base relations * 5 + 1 interact ~ 31 types
  c.kg_noise_rate = 0.01;
  c.mean_features_per_item = 4.0;
  c.seed = 404;
  return c;
}

Dataset GenerateSyntheticDataset(const SyntheticConfig& config,
                                 SyntheticGroundTruth* ground_truth) {
  FIRZEN_CHECK_GT(config.num_users, 0);
  FIRZEN_CHECK_GT(config.num_items, 0);
  FIRZEN_CHECK_GT(config.num_clusters, 1);
  Rng rng(config.seed);

  const Index users = config.num_users;
  const Index items = config.num_items;
  const Index k = config.num_clusters;
  const Index ld = config.latent_dim;

  // ---- Latent world ----
  Matrix centers(k, ld);
  centers.FillNormal(&rng, 1.0);

  // Zipf-ish cluster popularity.
  std::vector<Real> cluster_weight(static_cast<size_t>(k));
  for (Index c = 0; c < k; ++c) {
    cluster_weight[static_cast<size_t>(c)] = 1.0 / std::sqrt(1.0 + c);
  }

  std::vector<Index> item_cluster(static_cast<size_t>(items));
  Matrix item_latent(items, ld);
  std::vector<Real> item_popularity(static_cast<size_t>(items));
  for (Index i = 0; i < items; ++i) {
    const Index c = rng.SampleDiscrete(cluster_weight);
    item_cluster[static_cast<size_t>(i)] = c;
    for (Index d = 0; d < ld; ++d) {
      item_latent(i, d) = centers(c, d) + 0.45 * rng.Normal();
    }
    item_popularity[static_cast<size_t>(i)] =
        std::exp(config.popularity_sigma * rng.Normal());
  }

  Matrix user_latent(users, ld);
  for (Index u = 0; u < users; ++u) {
    // Users like 1-3 clusters with mixing weights.
    const Index num_likes = 1 + rng.UniformInt(3);
    Matrix mix(1, ld);
    Real total = 0.0;
    for (Index j = 0; j < num_likes; ++j) {
      const Index c = rng.SampleDiscrete(cluster_weight);
      const Real w = 0.4 + rng.Uniform();
      for (Index d = 0; d < ld; ++d) mix(0, d) += w * centers(c, d);
      total += w;
    }
    for (Index d = 0; d < ld; ++d) {
      user_latent(u, d) = mix(0, d) / total + 0.3 * rng.Normal();
    }
  }

  // ---- Interactions: Gumbel top-k over a scored candidate pool ----
  std::vector<Interaction> interactions;
  const Index pool_size = std::min<Index>(config.candidate_pool, items);
  for (Index u = 0; u < users; ++u) {
    const Index want = std::max<Index>(
        config.min_interactions_per_user,
        Poisson(config.mean_interactions_per_user, &rng));
    const Index n_u = std::min<Index>(want, pool_size - 1);
    std::vector<Index> pool = rng.SampleWithoutReplacement(items, pool_size);
    std::vector<ScoredItem> scored;
    scored.reserve(pool.size());
    for (Index i : pool) {
      Real affinity = 0.0;
      for (Index d = 0; d < ld; ++d) {
        affinity += user_latent(u, d) * item_latent(i, d);
      }
      const Real score =
          affinity / config.preference_temperature +
          std::log(item_popularity[static_cast<size_t>(i)]) + rng.Gumbel();
      scored.push_back({i, score});
    }
    // RanksBefore, not a bare score comparator: ties (however unlikely with
    // Gumbel noise) must break by item id or the generated dataset depends
    // on the sort implementation.
    std::partial_sort(scored.begin(), scored.begin() + n_u, scored.end(),
                      RanksBefore);
    for (Index j = 0; j < n_u; ++j) {
      interactions.push_back({u, scored[static_cast<size_t>(j)].item});
    }
  }

  // ---- Multi-modal features ----
  // Only the first `visible` latent dimensions are observable through
  // content (interactions use the full latent — content is informative but
  // never sufficient). Image: dominated by the cluster centroid (visually
  // similar categories), heavier noise. Text: item-specific latents, lighter
  // noise. This yields the paper's Table VIII ordering (text > image).
  const Index visible = std::max<Index>(
      1, static_cast<Index>(config.content_visible_fraction * ld + 0.5));
  Matrix w_img(visible, config.visual_dim);
  w_img.FillNormal(&rng, 1.0 / std::sqrt(static_cast<Real>(visible)));
  Matrix w_txt(visible, config.text_dim);
  w_txt.FillNormal(&rng, 1.0 / std::sqrt(static_cast<Real>(visible)));

  Matrix image(items, config.visual_dim);
  Matrix text(items, config.text_dim);
  for (Index i = 0; i < items; ++i) {
    const Index c = item_cluster[static_cast<size_t>(i)];
    for (Index f = 0; f < config.visual_dim; ++f) {
      Real signal = 0.0;
      for (Index d = 0; d < visible; ++d) {
        const Real basis = config.visual_cluster_share * centers(c, d) +
                           (1.0 - config.visual_cluster_share) *
                               item_latent(i, d);
        signal += basis * w_img(d, f);
      }
      image(i, f) = signal + config.visual_noise * rng.Normal();
    }
    for (Index f = 0; f < config.text_dim; ++f) {
      Real signal = 0.0;
      for (Index d = 0; d < visible; ++d) {
        signal += item_latent(i, d) * w_txt(d, f);
      }
      text(i, f) = signal + config.text_noise * rng.Normal();
    }
  }

  // ---- Assemble dataset ----
  Dataset dataset;
  dataset.name = config.name;
  dataset.num_users = users;
  dataset.num_items = items;
  dataset.modalities.push_back({"text", std::move(text)});
  dataset.modalities.push_back({"image", std::move(image)});

  SplitOptions split_options;
  split_options.cold_fraction = config.cold_fraction;
  split_options.train_ratio = config.train_ratio;
  Rng split_rng = rng.Fork();
  ApplyStrictColdSplit(interactions, split_options, &split_rng, &dataset);

  Rng kg_rng = rng.Fork();
  dataset.kg = BuildSyntheticKg(config, item_cluster, item_latent, &kg_rng);

  dataset.CheckValid();
  if (ground_truth != nullptr) {
    ground_truth->item_cluster = std::move(item_cluster);
    ground_truth->item_latent = std::move(item_latent);
    ground_truth->user_latent = std::move(user_latent);
  }
  return dataset;
}

}  // namespace firzen
