// KG noise injection for the robustness study (paper §IV-E, Table V):
// inject 20% extra triplets as (1) outliers — non-existent tail entities,
// (2) duplicates — copies of existing triplets, (3) discrepancies — existing
// but wrong tail entities of the same type.
#ifndef FIRZEN_DATA_NOISE_H_
#define FIRZEN_DATA_NOISE_H_

#include "src/data/kg.h"
#include "src/util/rng.h"

namespace firzen {

enum class KgNoiseKind {
  kOutlier,
  kDuplicate,
  kDiscrepancy,
};

/// Returns a copy of `kg` with `rate` * |triplets| extra noisy triplets of
/// the given kind. Outliers append brand-new entity ids (growing
/// num_entities); duplicates repeat existing triplets verbatim;
/// discrepancies reuse an existing head/relation with a wrong same-type tail.
KnowledgeGraph InjectKgNoise(const KnowledgeGraph& kg, KgNoiseKind kind,
                             Real rate, Rng* rng);

/// Human-readable name for reports ("Outlier" / "Duplicate" /
/// "Discrepancy").
const char* KgNoiseKindName(KgNoiseKind kind);

}  // namespace firzen

#endif  // FIRZEN_DATA_NOISE_H_
