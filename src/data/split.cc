#include "src/data/split.h"

#include <algorithm>
#include <unordered_map>

#include "src/util/check.h"

namespace firzen {

void ApplyStrictColdSplit(const std::vector<Interaction>& interactions,
                          const SplitOptions& options, Rng* rng,
                          Dataset* dataset) {
  FIRZEN_CHECK(rng != nullptr);
  FIRZEN_CHECK(dataset != nullptr);
  FIRZEN_CHECK_GT(dataset->num_users, 0);
  FIRZEN_CHECK_GT(dataset->num_items, 0);
  FIRZEN_CHECK_GT(options.cold_fraction, 0.0);
  FIRZEN_CHECK_LT(options.cold_fraction, 1.0);

  const Index num_items = dataset->num_items;
  const Index num_cold = std::max<Index>(
      1, static_cast<Index>(options.cold_fraction * num_items));

  dataset->is_cold_item.assign(static_cast<size_t>(num_items), false);
  for (Index i : rng->SampleWithoutReplacement(num_items, num_cold)) {
    dataset->is_cold_item[static_cast<size_t>(i)] = true;
  }

  std::vector<Interaction> warm;
  std::vector<Interaction> cold;
  for (const Interaction& x : interactions) {
    if (dataset->is_cold_item[static_cast<size_t>(x.item)]) {
      cold.push_back(x);
    } else {
      warm.push_back(x);
    }
  }

  // Cold pool -> cold val : cold test, 1:1.
  rng->Shuffle(&cold);
  dataset->cold_val.assign(cold.begin(), cold.begin() + cold.size() / 2);
  dataset->cold_test.assign(cold.begin() + cold.size() / 2, cold.end());

  // Warm pool -> train : val : test = train_ratio : rest/2 : rest/2.
  rng->Shuffle(&warm);
  const size_t train_count =
      static_cast<size_t>(options.train_ratio * warm.size());
  const size_t val_count = (warm.size() - train_count) / 2;
  dataset->train.assign(warm.begin(), warm.begin() + train_count);
  dataset->warm_val.assign(warm.begin() + train_count,
                           warm.begin() + train_count + val_count);
  dataset->warm_test.assign(warm.begin() + train_count + val_count,
                            warm.end());

  // Repair pass 1: every warm item must keep >= 1 training interaction,
  // otherwise it would behave as an (unlabelled) cold item.
  std::vector<int> item_train_count(static_cast<size_t>(num_items), 0);
  for (const Interaction& x : dataset->train) {
    ++item_train_count[static_cast<size_t>(x.item)];
  }
  auto rescue_from = [&](std::vector<Interaction>* held) {
    for (size_t k = 0; k < held->size();) {
      const Interaction x = (*held)[k];
      if (item_train_count[static_cast<size_t>(x.item)] == 0) {
        dataset->train.push_back(x);
        ++item_train_count[static_cast<size_t>(x.item)];
        (*held)[k] = held->back();
        held->pop_back();
      } else {
        ++k;
      }
    }
  };
  rescue_from(&dataset->warm_val);
  rescue_from(&dataset->warm_test);
  // Items with no warm interaction at all (never observed) are re-labelled
  // cold so the invariant "warm => trainable" holds.
  for (Index i = 0; i < num_items; ++i) {
    if (!dataset->is_cold_item[static_cast<size_t>(i)] &&
        item_train_count[static_cast<size_t>(i)] == 0) {
      dataset->is_cold_item[static_cast<size_t>(i)] = true;
    }
  }
  // Drop warm-eval rows that reference re-labelled items.
  auto drop_cold_rows = [&](std::vector<Interaction>* split) {
    split->erase(std::remove_if(split->begin(), split->end(),
                                [&](const Interaction& x) {
                                  return dataset->is_cold_item
                                      [static_cast<size_t>(x.item)];
                                }),
                 split->end());
  };
  drop_cold_rows(&dataset->warm_val);
  drop_cold_rows(&dataset->warm_test);

  // Repair pass 2: every user that interacts with warm items keeps at least
  // one training interaction (move one back from val/test if needed).
  std::vector<int> user_train_count(static_cast<size_t>(dataset->num_users),
                                    0);
  for (const Interaction& x : dataset->train) {
    ++user_train_count[static_cast<size_t>(x.user)];
  }
  auto rescue_user_from = [&](std::vector<Interaction>* held) {
    for (size_t k = 0; k < held->size();) {
      const Interaction x = (*held)[k];
      if (user_train_count[static_cast<size_t>(x.user)] == 0) {
        dataset->train.push_back(x);
        ++user_train_count[static_cast<size_t>(x.user)];
        (*held)[k] = held->back();
        held->pop_back();
      } else {
        ++k;
      }
    }
  };
  rescue_user_from(&dataset->warm_val);
  rescue_user_from(&dataset->warm_test);

  dataset->cold_known.clear();
}

Dataset MakeNormalColdProtocol(const Dataset& dataset, Rng* rng) {
  FIRZEN_CHECK(rng != nullptr);
  Dataset out = dataset;
  out.cold_known.clear();

  auto split_known = [&](const std::vector<Interaction>& in,
                         std::vector<Interaction>* unknown) {
    unknown->clear();
    // Group per item so every normal-cold item with >= 2 interactions gets at
    // least one revealed link.
    std::unordered_map<Index, std::vector<Interaction>> by_item;
    for (const Interaction& x : in) by_item[x.item].push_back(x);
    // Visit items in sorted id order, NOT hash order: each group consumes
    // rng draws (Shuffle) and appends to the output splits, so iterating the
    // map directly would make the protocol depend on the standard library's
    // hash — a different split on every platform despite the fixed seed.
    std::vector<Index> item_ids;
    item_ids.reserve(by_item.size());
    // firzen-lint: allow(unordered-iteration) -- keys only, sorted below.
    for (const auto& [item, rows] : by_item) {
      (void)rows;
      item_ids.push_back(item);
    }
    std::sort(item_ids.begin(), item_ids.end());
    for (Index item : item_ids) {
      std::vector<Interaction>& rows = by_item[item];
      rng->Shuffle(&rows);
      const size_t known_count = rows.size() / 2;
      for (size_t k = 0; k < rows.size(); ++k) {
        if (k < known_count) {
          out.cold_known.push_back(rows[k]);
        } else {
          unknown->push_back(rows[k]);
        }
      }
    }
  };
  std::vector<Interaction> unknown_val;
  std::vector<Interaction> unknown_test;
  split_known(dataset.cold_val, &unknown_val);
  split_known(dataset.cold_test, &unknown_test);
  out.cold_val = std::move(unknown_val);
  out.cold_test = std::move(unknown_test);
  return out;
}

}  // namespace firzen
