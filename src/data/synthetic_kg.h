// Synthetic knowledge graph builder following the paper's Fig. 5 schema:
// entities {item, feature, brand, category}, relations {described_by,
// produced_by, belong_to, also_bought, also_viewed, bought_together}.
#ifndef FIRZEN_DATA_SYNTHETIC_KG_H_
#define FIRZEN_DATA_SYNTHETIC_KG_H_

#include <vector>

#include "src/data/kg.h"
#include "src/data/synthetic.h"
#include "src/tensor/matrix.h"
#include "src/util/rng.h"

namespace firzen {

/// Builds the typed KG for a generated item population. Brand/category/
/// feature assignment correlates with `item_cluster` (knowledge is useful),
/// while `config.kg_noise_rate` rewires a fraction of tails at random
/// (knowledge is noisy).
KnowledgeGraph BuildSyntheticKg(const SyntheticConfig& config,
                                const std::vector<Index>& item_cluster,
                                const Matrix& item_latent, Rng* rng);

}  // namespace firzen

#endif  // FIRZEN_DATA_SYNTHETIC_KG_H_
