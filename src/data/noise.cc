#include "src/data/noise.h"

#include <vector>

#include "src/util/check.h"

namespace firzen {

const char* KgNoiseKindName(KgNoiseKind kind) {
  switch (kind) {
    case KgNoiseKind::kOutlier:
      return "Outlier";
    case KgNoiseKind::kDuplicate:
      return "Duplicate";
    case KgNoiseKind::kDiscrepancy:
      return "Discrepancy";
  }
  return "?";
}

KnowledgeGraph InjectKgNoise(const KnowledgeGraph& kg, KgNoiseKind kind,
                             Real rate, Rng* rng) {
  FIRZEN_CHECK(rng != nullptr);
  FIRZEN_CHECK_GE(rate, 0.0);
  kg.CheckValid();
  KnowledgeGraph out = kg;
  const Index extra =
      static_cast<Index>(rate * static_cast<Real>(kg.triplets.size()));
  if (extra == 0 || kg.triplets.empty()) return out;

  // Entities of each type, for type-consistent discrepancy rewiring.
  std::vector<std::vector<Index>> by_type(4);
  for (Index e = 0; e < kg.num_entities; ++e) {
    const int type = kg.entity_type.empty()
                         ? 0
                         : static_cast<int>(
                               kg.entity_type[static_cast<size_t>(e)]);
    by_type[static_cast<size_t>(type)].push_back(e);
  }

  for (Index n = 0; n < extra; ++n) {
    const Triplet& base = kg.triplets[static_cast<size_t>(
        rng->UniformInt(static_cast<Index>(kg.triplets.size())))];
    switch (kind) {
      case KgNoiseKind::kOutlier: {
        // Brand-new tail entity (e.g., an unseen brand), same type tag.
        const Index new_entity = out.num_entities++;
        if (!out.entity_type.empty()) {
          out.entity_type.push_back(
              kg.entity_type.empty()
                  ? EntityType::kBrand
                  : kg.entity_type[static_cast<size_t>(base.tail)]);
        }
        out.triplets.push_back({base.head, base.relation, new_entity});
        break;
      }
      case KgNoiseKind::kDuplicate: {
        out.triplets.push_back(base);
        break;
      }
      case KgNoiseKind::kDiscrepancy: {
        const int type = kg.entity_type.empty()
                             ? 0
                             : static_cast<int>(
                                   kg.entity_type[static_cast<size_t>(
                                       base.tail)]);
        const auto& pool = by_type[static_cast<size_t>(type)];
        if (pool.empty()) break;
        Index wrong = pool[static_cast<size_t>(
            rng->UniformInt(static_cast<Index>(pool.size())))];
        out.triplets.push_back({base.head, base.relation, wrong});
        break;
      }
    }
  }
  out.CheckValid();
  return out;
}

}  // namespace firzen
