// Synthetic benchmark generator. The paper's benchmarks (Amazon Beauty /
// Cell Phones / Clothing, Weixin-Sports) are proprietary or gated; this
// generator builds latent-factor worlds that preserve the structural
// properties the evaluation depends on (see DESIGN.md §2):
//   * interactions driven by clustered user/item latent preference vectors,
//   * multi-modal features = noisy projections of item latents (text more
//     item-discriminative than image, matching Table VIII's finding),
//   * a typed KG (Fig. 5 schema) whose entities correlate with the same
//     latent clusters, plus controllable noise,
//   * strict cold-start splits per §IV-A.1.
#ifndef FIRZEN_DATA_SYNTHETIC_H_
#define FIRZEN_DATA_SYNTHETIC_H_

#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/util/rng.h"

namespace firzen {

struct SyntheticConfig {
  std::string name = "synthetic";
  Index num_users = 1500;
  Index num_items = 800;
  Index num_clusters = 12;
  Index latent_dim = 16;

  // Interaction process.
  Real mean_interactions_per_user = 9.0;
  Index min_interactions_per_user = 5;
  Index candidate_pool = 160;        // scored candidates per user
  Real preference_temperature = 0.3; // softmax temperature on theta.phi
  Real popularity_sigma = 0.8;       // lognormal popularity skew

  // Multi-modal features.
  Index visual_dim = 96;
  Index text_dim = 48;
  /// Fraction of the latent preference space observable through content.
  /// Interactions are driven by the FULL latent, but features only encode
  /// the first ceil(fraction * latent_dim) dimensions — content explains
  /// part of the preference signal, never all of it (otherwise pure-content
  /// models would dominate cold-start, which real data does not show).
  Real content_visible_fraction = 0.5;
  /// Fraction of the visual signal carried by the cluster centroid (visually
  /// similar within category) vs. the item-specific latent.
  Real visual_cluster_share = 0.75;
  Real visual_noise = 0.8;
  Real text_noise = 0.45;

  // Knowledge graph.
  Index num_brands = 60;
  Index num_categories = 12;
  Index num_feature_words = 400;
  Real mean_features_per_item = 6.0;
  Real brand_cluster_purity = 0.8;   // P(brand from the item's cluster pool)
  Index also_edges_per_item = 4;
  /// Splits each base relation into this many sub-relation ids (Weixin's
  /// 227-relation KG is emulated by a large split factor). 1 = no split.
  Index relation_split = 1;
  Real kg_noise_rate = 0.03;

  // Strict cold split.
  Real cold_fraction = 0.2;
  Real train_ratio = 0.8;

  uint64_t seed = 7;
};

/// Per-dataset profiles matching the paper's relative scale/sparsity
/// ordering (Table I) at CPU-trainable size. `scale` multiplies user/item
/// counts (benchmarks use scale > 1 under FIRZEN_BENCH_FULL=1).
SyntheticConfig BeautySConfig(Real scale = 1.0);
SyntheticConfig CellPhonesSConfig(Real scale = 1.0);
SyntheticConfig ClothingSConfig(Real scale = 1.0);
SyntheticConfig WeixinSportsSConfig(Real scale = 1.0);

/// Ground truth of the generated world, exposed for tests and diagnostics.
struct SyntheticGroundTruth {
  std::vector<Index> item_cluster;    // size num_items
  Matrix item_latent;                 // num_items x latent_dim
  Matrix user_latent;                 // num_users x latent_dim
};

/// Generates the full dataset: interactions (5-core on users by
/// construction), strict cold split, modalities {"text", "image"}, KG.
Dataset GenerateSyntheticDataset(const SyntheticConfig& config,
                                 SyntheticGroundTruth* ground_truth = nullptr);

}  // namespace firzen

#endif  // FIRZEN_DATA_SYNTHETIC_H_
