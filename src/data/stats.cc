#include "src/data/stats.h"

namespace firzen {

DatasetStats ComputeDatasetStats(const Dataset& dataset) {
  DatasetStats stats;
  stats.name = dataset.name;
  stats.num_users = dataset.num_users;
  stats.num_items = dataset.num_items;
  for (bool cold : dataset.is_cold_item) {
    if (cold) {
      ++stats.num_cold_items;
    } else {
      ++stats.num_warm_items;
    }
  }
  stats.num_interactions = static_cast<Index>(
      dataset.train.size() + dataset.warm_val.size() +
      dataset.warm_test.size() + dataset.cold_val.size() +
      dataset.cold_test.size() + dataset.cold_known.size());
  if (dataset.num_users > 0) {
    stats.avg_interactions_per_user =
        static_cast<Real>(stats.num_interactions) / dataset.num_users;
  }
  if (dataset.num_items > 0) {
    stats.avg_interactions_per_item =
        static_cast<Real>(stats.num_interactions) / dataset.num_items;
  }
  const Real denom =
      static_cast<Real>(dataset.num_users) * static_cast<Real>(dataset.num_items);
  if (denom > 0) {
    stats.sparsity_percent =
        100.0 * (1.0 - static_cast<Real>(stats.num_interactions) / denom);
  }
  stats.num_entities = dataset.kg.num_entities;
  // The paper's Table I counts the Interact relation alongside KG relations.
  stats.num_relations =
      dataset.kg.num_relations > 0 ? dataset.kg.num_relations + 1 : 0;
  stats.num_triplets = static_cast<Index>(dataset.kg.triplets.size());
  return stats;
}

}  // namespace firzen
