#include "src/data/dataset.h"

#include <algorithm>

#include "src/util/check.h"

namespace firzen {

void KnowledgeGraph::CheckValid() const {
  FIRZEN_CHECK_GE(num_items, 0);
  FIRZEN_CHECK_LE(num_items, num_entities);
  if (!entity_type.empty()) {
    FIRZEN_CHECK_EQ(static_cast<Index>(entity_type.size()), num_entities);
  }
  for (const Triplet& t : triplets) {
    FIRZEN_CHECK_GE(t.head, 0);
    FIRZEN_CHECK_LT(t.head, num_entities);
    FIRZEN_CHECK_GE(t.tail, 0);
    FIRZEN_CHECK_LT(t.tail, num_entities);
    FIRZEN_CHECK_GE(t.relation, 0);
    FIRZEN_CHECK_LT(t.relation, num_relations);
  }
}

std::vector<Index> Dataset::WarmItems() const {
  std::vector<Index> out;
  for (Index i = 0; i < num_items; ++i) {
    if (!is_cold_item[static_cast<size_t>(i)]) out.push_back(i);
  }
  return out;
}

std::vector<Index> Dataset::ColdItems() const {
  std::vector<Index> out;
  for (Index i = 0; i < num_items; ++i) {
    if (is_cold_item[static_cast<size_t>(i)]) out.push_back(i);
  }
  return out;
}

std::vector<std::vector<Index>> Dataset::TrainItemsByUser() const {
  std::vector<std::vector<Index>> out(static_cast<size_t>(num_users));
  for (const Interaction& x : train) {
    out[static_cast<size_t>(x.user)].push_back(x.item);
  }
  for (auto& items : out) {
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
  }
  return out;
}

std::vector<std::vector<Index>> Dataset::TrainUsersByItem() const {
  std::vector<std::vector<Index>> out(static_cast<size_t>(num_items));
  for (const Interaction& x : train) {
    out[static_cast<size_t>(x.item)].push_back(x.user);
  }
  for (auto& users : out) {
    std::sort(users.begin(), users.end());
    users.erase(std::unique(users.begin(), users.end()), users.end());
  }
  return out;
}

const Modality* Dataset::FindModality(const std::string& name) const {
  for (const Modality& m : modalities) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

void Dataset::CheckValid() const {
  FIRZEN_CHECK_GT(num_users, 0);
  FIRZEN_CHECK_GT(num_items, 0);
  FIRZEN_CHECK_EQ(static_cast<Index>(is_cold_item.size()), num_items);

  auto check_split = [&](const std::vector<Interaction>& split,
                         bool must_be_cold, bool must_be_warm) {
    for (const Interaction& x : split) {
      FIRZEN_CHECK_GE(x.user, 0);
      FIRZEN_CHECK_LT(x.user, num_users);
      FIRZEN_CHECK_GE(x.item, 0);
      FIRZEN_CHECK_LT(x.item, num_items);
      if (must_be_cold) {
        FIRZEN_CHECK(is_cold_item[static_cast<size_t>(x.item)]);
      }
      if (must_be_warm) {
        FIRZEN_CHECK(!is_cold_item[static_cast<size_t>(x.item)]);
      }
    }
  };
  check_split(train, false, /*must_be_warm=*/true);
  check_split(warm_val, false, true);
  check_split(warm_test, false, true);
  check_split(cold_val, /*must_be_cold=*/true, false);
  check_split(cold_test, true, false);
  check_split(cold_known, true, false);

  for (const Modality& m : modalities) {
    FIRZEN_CHECK_EQ(m.features.rows(), num_items);
    FIRZEN_CHECK_GT(m.features.cols(), 0);
  }
  if (kg.num_entities > 0) {
    FIRZEN_CHECK_EQ(kg.num_items, num_items);
    kg.CheckValid();
  }
}

}  // namespace firzen
