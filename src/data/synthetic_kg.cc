#include "src/data/synthetic_kg.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace firzen {
namespace {

Index PoissonCount(Real mean, Rng* rng) {
  const Real l = std::exp(-mean);
  Index k = 0;
  Real p = 1.0;
  do {
    ++k;
    p *= rng->Uniform();
  } while (p > l);
  return k - 1;
}

}  // namespace

KnowledgeGraph BuildSyntheticKg(const SyntheticConfig& config,
                                const std::vector<Index>& item_cluster,
                                const Matrix& item_latent, Rng* rng) {
  const Index items = static_cast<Index>(item_cluster.size());
  const Index k = config.num_clusters;
  FIRZEN_CHECK_GT(items, 0);
  FIRZEN_CHECK_GT(config.num_brands, 0);
  FIRZEN_CHECK_GT(config.num_categories, 0);
  FIRZEN_CHECK_GT(config.num_feature_words, 0);
  FIRZEN_CHECK_GE(config.relation_split, 1);

  KnowledgeGraph kg;
  kg.num_items = items;
  const Index feature_base = items;
  const Index brand_base = feature_base + config.num_feature_words;
  const Index category_base = brand_base + config.num_brands;
  kg.num_entities = category_base + config.num_categories;
  kg.num_relations = kNumBaseRelations * config.relation_split;

  kg.entity_type.assign(static_cast<size_t>(kg.num_entities),
                        EntityType::kItem);
  for (Index e = feature_base; e < brand_base; ++e) {
    kg.entity_type[static_cast<size_t>(e)] = EntityType::kFeature;
  }
  for (Index e = brand_base; e < category_base; ++e) {
    kg.entity_type[static_cast<size_t>(e)] = EntityType::kBrand;
  }
  for (Index e = category_base; e < kg.num_entities; ++e) {
    kg.entity_type[static_cast<size_t>(e)] = EntityType::kCategory;
  }

  // Sub-relation ids emulate many-relation KGs (Weixin's WikiSports).
  auto rel = [&](KgRelation base, Index variant) {
    return static_cast<Index>(base) * config.relation_split +
           (variant % config.relation_split);
  };

  // Brand pools per cluster: brands are partitioned, purity controls how
  // often an item draws from its own cluster's pool.
  auto brand_for = [&](Index cluster) {
    const Index pool = config.num_brands / k > 0 ? config.num_brands / k : 1;
    Index chosen_cluster = cluster;
    if (!rng->Bernoulli(config.brand_cluster_purity)) {
      chosen_cluster = rng->UniformInt(k);
    }
    const Index start = (chosen_cluster * pool) % config.num_brands;
    return brand_base + (start + rng->UniformInt(pool)) % config.num_brands;
  };

  // Cluster -> category map (stable, slightly noisy at triplet level).
  auto category_for = [&](Index cluster) {
    return category_base + (cluster % config.num_categories);
  };

  // Per-cluster topic over feature words: each cluster owns a window of the
  // vocabulary; words are drawn from the window with occasional global draws
  // (TF-IDF-filtered review vocabulary in the paper).
  const Index window =
      std::max<Index>(8, config.num_feature_words / std::max<Index>(1, k));
  auto feature_for = [&](Index cluster) {
    if (rng->Bernoulli(0.15)) {
      return feature_base + rng->UniformInt(config.num_feature_words);
    }
    const Index start = (cluster * window) % config.num_feature_words;
    return feature_base +
           (start + rng->UniformInt(window)) % config.num_feature_words;
  };

  // Co-purchase style item-item edges toward latent-similar cluster peers.
  std::vector<std::vector<Index>> cluster_members(static_cast<size_t>(k));
  for (Index i = 0; i < items; ++i) {
    cluster_members[static_cast<size_t>(item_cluster[static_cast<size_t>(i)])]
        .push_back(i);
  }
  const Index ld = item_latent.cols();
  auto similar_peer = [&](Index i) -> Index {
    const auto& members =
        cluster_members[static_cast<size_t>(
            item_cluster[static_cast<size_t>(i)])];
    if (members.size() < 2) return -1;
    // Best of a small random sample by latent dot product.
    Index best = -1;
    Real best_score = -1e30;
    for (int trial = 0; trial < 6; ++trial) {
      const Index cand =
          members[static_cast<size_t>(rng->UniformInt(
              static_cast<Index>(members.size())))];
      if (cand == i) continue;
      Real score = 0.0;
      for (Index d = 0; d < ld; ++d) score += item_latent(i, d) * item_latent(cand, d);
      if (score > best_score) {
        best_score = score;
        best = cand;
      }
    }
    return best;
  };

  for (Index i = 0; i < items; ++i) {
    const Index cluster = item_cluster[static_cast<size_t>(i)];
    kg.triplets.push_back({i, rel(kProducedBy, i), brand_for(cluster)});
    kg.triplets.push_back({i, rel(kBelongTo, i), category_for(cluster)});
    const Index num_words =
        std::max<Index>(1, PoissonCount(config.mean_features_per_item, rng));
    for (Index w = 0; w < num_words; ++w) {
      kg.triplets.push_back({i, rel(kDescribedBy, i + w), feature_for(cluster)});
    }
    for (Index e = 0; e < config.also_edges_per_item; ++e) {
      const Index peer = similar_peer(i);
      if (peer < 0) continue;
      const KgRelation base = e % 3 == 0   ? kAlsoBought
                              : e % 3 == 1 ? kAlsoViewed
                                           : kBoughtTogether;
      kg.triplets.push_back({i, rel(base, i + e), peer});
    }
  }

  // Structured noise: rewire a fraction of tails to a random entity of the
  // same type (knowledge is useful but imperfect).
  const size_t noisy =
      static_cast<size_t>(config.kg_noise_rate * kg.triplets.size());
  for (size_t n = 0; n < noisy; ++n) {
    Triplet& t = kg.triplets[static_cast<size_t>(
        rng->UniformInt(static_cast<Index>(kg.triplets.size())))];
    const EntityType type = kg.entity_type[static_cast<size_t>(t.tail)];
    switch (type) {
      case EntityType::kItem:
        t.tail = rng->UniformInt(items);
        break;
      case EntityType::kFeature:
        t.tail = feature_base + rng->UniformInt(config.num_feature_words);
        break;
      case EntityType::kBrand:
        t.tail = brand_base + rng->UniformInt(config.num_brands);
        break;
      case EntityType::kCategory:
        t.tail = category_base + rng->UniformInt(config.num_categories);
        break;
    }
  }

  kg.CheckValid();
  return kg;
}

}  // namespace firzen
