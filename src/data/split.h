// Interaction split machinery for the paper's evaluation protocols:
//  * strict cold-start (§IV-A.1): 20% of items become strict cold items whose
//    interactions form cold val/test (1:1); warm interactions split 8:1:1.
//  * normal cold-start (§IV-F, Table VI): cold sets further split 1:1 into
//    `known` links (revealed at inference) and `unknown` eval targets.
#ifndef FIRZEN_DATA_SPLIT_H_
#define FIRZEN_DATA_SPLIT_H_

#include <vector>

#include "src/data/dataset.h"
#include "src/util/rng.h"

namespace firzen {

struct SplitOptions {
  /// Fraction of items chosen as strict cold-start items.
  Real cold_fraction = 0.2;
  /// Fraction of warm interactions used for training; the remainder is
  /// split 1:1 into warm validation and warm test.
  Real train_ratio = 0.8;
};

/// Partitions `interactions` into the strict cold-start arrangement, filling
/// dataset->train/warm_val/warm_test/cold_val/cold_test and is_cold_item.
/// Guarantees: every warm item retains at least one training interaction
/// (otherwise it would be accidentally cold) and every user with a warm
/// interaction retains at least one training interaction.
void ApplyStrictColdSplit(const std::vector<Interaction>& interactions,
                          const SplitOptions& options, Rng* rng,
                          Dataset* dataset);

/// Returns a copy of `dataset` arranged for the normal cold-start protocol:
/// each cold item's val/test interactions are split 1:1 into known links
/// (moved to cold_known) and unknown eval targets (kept in cold_val/test).
Dataset MakeNormalColdProtocol(const Dataset& dataset, Rng* rng);

}  // namespace firzen

#endif  // FIRZEN_DATA_SPLIT_H_
