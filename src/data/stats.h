// Dataset statistics matching the paper's Table I rows.
#ifndef FIRZEN_DATA_STATS_H_
#define FIRZEN_DATA_STATS_H_

#include <string>

#include "src/data/dataset.h"

namespace firzen {

/// Aggregate statistics for one benchmark (Table I layout).
struct DatasetStats {
  std::string name;
  Index num_users = 0;
  Index num_items = 0;
  Index num_warm_items = 0;
  Index num_cold_items = 0;
  Index num_interactions = 0;
  Real avg_interactions_per_user = 0.0;
  Real avg_interactions_per_item = 0.0;
  Real sparsity_percent = 0.0;  // 100 * (1 - inter / (U * I))
  Index num_entities = 0;
  Index num_relations = 0;  // KG relations + Interact (paper counts both)
  Index num_triplets = 0;
};

/// Computes Table I statistics over all splits of the dataset.
DatasetStats ComputeDatasetStats(const Dataset& dataset);

}  // namespace firzen

#endif  // FIRZEN_DATA_STATS_H_
