// Fig. 8: t-SNE visualization of strict cold (blue) vs warm (red) item
// embeddings for LightGCN, KGAT, MMSSL, MKGAT, DropoutNet and Firzen.
// Besides 2-D coordinates (ASCII density plot), we print quantitative
// mixing statistics: the paper's visual claim — Firzen's cold embeddings
// blend into the warm manifold while CF models leave them isolated —
// becomes a measurable cold/warm kNN-mixing score.
#include <algorithm>

#include "bench/bench_common.h"

#include "src/eval/tsne.h"

int main() {
  using namespace firzen;        // NOLINT(build/namespaces)
  using namespace firzen::bench;  // NOLINT(build/namespaces)
  SetLogLevel(LogLevel::kError);
  PrintHeader("Fig. 8: t-SNE of cold vs warm item embeddings + mixing stats",
              "paper Fig. 8");

  SyntheticGroundTruth truth;
  const Dataset dataset =
      GenerateSyntheticDataset(BeautySConfig(BenchScale()), &truth);
  const TrainOptions train = BenchTrainOptions();
  const std::vector<std::string> methods{"LightGCN", "KGAT",      "MMSSL",
                                         "MKGAT",    "DropoutNet", "Firzen"};

  // Sample items for the O(n^2) t-SNE.
  Rng rng(808);
  const Index sample_size = std::min<Index>(240, dataset.num_items);
  std::vector<Index> sample =
      rng.SampleWithoutReplacement(dataset.num_items, sample_size);
  std::vector<bool> sample_cold;
  for (Index item : sample) {
    sample_cold.push_back(dataset.is_cold_item[static_cast<size_t>(item)]);
  }

  // The paper's visual claim quantified: a cold embedding is "well placed"
  // when its nearest WARM neighbor shares its ground-truth latent cluster —
  // random placements score ~1/num_clusters, perfect transfer scores ~1.
  auto cluster_match = [&](const Matrix& all) {
    Index matches = 0;
    Index cold_count = 0;
    for (Index i = 0; i < dataset.num_items; ++i) {
      if (!dataset.is_cold_item[static_cast<size_t>(i)]) continue;
      ++cold_count;
      Real best = -1e30;
      Index best_item = -1;
      const Real norm_i = std::max(all.RowNorm(i), 1e-12);
      for (Index j = 0; j < dataset.num_items; ++j) {
        if (dataset.is_cold_item[static_cast<size_t>(j)]) continue;
        Real dot = 0.0;
        for (Index c = 0; c < all.cols(); ++c) dot += all(i, c) * all(j, c);
        const Real sim = dot / (norm_i * std::max(all.RowNorm(j), 1e-12));
        if (sim > best) {
          best = sim;
          best_item = j;
        }
      }
      if (best_item >= 0 &&
          truth.item_cluster[static_cast<size_t>(best_item)] ==
              truth.item_cluster[static_cast<size_t>(i)]) {
        ++matches;
      }
    }
    return cold_count > 0 ? static_cast<Real>(matches) / cold_count : 0.0;
  };

  TablePrinter table({"Method", "cold->warm cluster match (1=transfer)",
                      "cold-warm kNN mix", "centroid distance ratio"});
  for (const std::string& name : methods) {
    auto model = CreateModel(name);
    model->Fit(dataset, train);
    model->PrepareColdInference(dataset);
    const Matrix all = model->ItemEmbeddings();
    Matrix emb(sample_size, all.cols());
    for (Index r = 0; r < sample_size; ++r) {
      for (Index c = 0; c < all.cols(); ++c) {
        emb(r, c) = all(sample[static_cast<size_t>(r)], c);
      }
    }
    const MixingStats stats = ComputeMixingStats(emb, sample_cold, 10);
    table.BeginRow();
    table.AddCell(name);
    table.AddCell(cluster_match(all), 3);
    table.AddCell(stats.cold_warm_knn_mix, 3);
    table.AddCell(stats.centroid_distance_ratio, 3);

    // 2-D t-SNE ASCII density: '.' warm, 'o' cold, '#' mixed cell.
    TsneOptions tsne;
    tsne.iterations = 120;
    tsne.perplexity = 20.0;
    const Matrix y = TsneEmbed(emb, tsne);
    Real min_x = 1e30;
    Real max_x = -1e30;
    Real min_y = 1e30;
    Real max_y = -1e30;
    for (Index i = 0; i < y.rows(); ++i) {
      min_x = std::min(min_x, y(i, 0));
      max_x = std::max(max_x, y(i, 0));
      min_y = std::min(min_y, y(i, 1));
      max_y = std::max(max_y, y(i, 1));
    }
    const int w = 56;
    const int h = 14;
    std::vector<std::string> grid(h, std::string(w, ' '));
    for (Index i = 0; i < y.rows(); ++i) {
      const int gx = std::min<int>(
          w - 1, static_cast<int>((y(i, 0) - min_x) / (max_x - min_x + 1e-9) *
                                  (w - 1)));
      const int gy = std::min<int>(
          h - 1, static_cast<int>((y(i, 1) - min_y) / (max_y - min_y + 1e-9) *
                                  (h - 1)));
      char& cell = grid[static_cast<size_t>(gy)][static_cast<size_t>(gx)];
      const char mark = sample_cold[static_cast<size_t>(i)] ? 'o' : '.';
      cell = (cell == ' ' || cell == mark) ? mark : '#';
    }
    std::printf("\n%s t-SNE ('.'=warm, 'o'=cold, '#'=both):\n", name.c_str());
    for (const std::string& row : grid) std::printf("  %s\n", row.c_str());
    std::fprintf(stderr, "  [%s] done\n", name.c_str());
  }
  std::printf("\n");
  table.Print();
  return 0;
}
