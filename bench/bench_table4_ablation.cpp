// Table IV: component ablation of Firzen on Beauty-S — removing the
// behavior-aware (BA), knowledge-aware (KA), modality-aware (MA) branches or
// the MSHGL stage (MS) and reporting Cold / Warm / HM.
#include "bench/bench_common.h"

#include "src/core/firzen_model.h"

int main() {
  using namespace firzen;        // NOLINT(build/namespaces)
  using namespace firzen::bench;  // NOLINT(build/namespaces)
  SetLogLevel(LogLevel::kError);
  PrintHeader("Table IV: Firzen component ablation (Beauty-S)",
              "paper Table IV");

  const Dataset dataset = LoadProfile("Beauty-S");
  const TrainOptions train = BenchTrainOptions();

  struct Variant {
    const char* label;
    FirzenOptions options;
  };
  std::vector<Variant> variants;
  {
    FirzenOptions o;
    o.use_behavior = false;
    variants.push_back({"w/o BA (KA+MA+MS)", o});
  }
  {
    FirzenOptions o;
    o.use_knowledge = false;
    variants.push_back({"w/o KA (BA+MA+MS)", o});
  }
  {
    FirzenOptions o;
    o.use_modality = false;
    variants.push_back({"w/o MA (BA+KA+MS)", o});
  }
  {
    FirzenOptions o;
    o.use_mshgl = false;
    variants.push_back({"w/o MS (BA+KA+MA)", o});
  }
  variants.push_back({"Firzen (full)", FirzenOptions()});

  TablePrinter table({"Variant", "Setting", "R@20", "M@20", "N@20", "H@20",
                      "P@20"});
  for (const Variant& variant : variants) {
    FirzenModel model(variant.options);
    const ProtocolResult result =
        RunStrictColdProtocol(&model, dataset, train);
    std::fprintf(stderr, "  [%s] done (%.1fs)\n", variant.label,
                 result.fit_seconds);
    for (const char* setting : {"Cold", "Warm", "HM"}) {
      table.BeginRow();
      table.AddCell(variant.label);
      table.AddCell(setting);
      const MetricBundle& m = std::string(setting) == "Cold"
                                  ? result.cold.metrics
                              : std::string(setting) == "Warm"
                                  ? result.warm.metrics
                                  : result.hm;
      AddMetricCells(&table, m);
    }
  }
  table.Print();
  return 0;
}
