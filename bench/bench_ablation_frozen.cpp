// Design-decision ablation (DESIGN.md §4.1): FROZEN item-item graphs (the
// paper's central design, after FREEDOM) vs. LATTICE-style DYNAMIC graphs
// rebuilt each epoch from the learned modality projections. The paper argues
// frozen graphs match or beat dynamic ones at a fraction of the cost
// (§III-B: "Different from [22], the homogeneous graphs are frozen without
// updating during the training phase").
#include "bench/bench_common.h"

#include "src/core/firzen_model.h"

int main() {
  using namespace firzen;        // NOLINT(build/namespaces)
  using namespace firzen::bench;  // NOLINT(build/namespaces)
  SetLogLevel(LogLevel::kError);
  PrintHeader("Ablation: frozen vs dynamic (per-epoch) item-item graphs",
              "paper §III-B design rationale");

  const Dataset dataset = LoadProfile("Beauty-S");
  TrainOptions train = BenchTrainOptions();
  train.patience = 1000;  // fixed budget so training times are comparable

  TablePrinter table({"Item-item graphs", "Cold M@20", "Warm M@20",
                      "HM M@20", "Training time (s)"});
  for (const bool dynamic : {false, true}) {
    FirzenOptions options;
    options.dynamic_item_graphs = dynamic;
    FirzenModel model(options);
    const ProtocolResult result =
        RunStrictColdProtocol(&model, dataset, train);
    std::fprintf(stderr, "  [%s] done (%.1fs)\n",
                 dynamic ? "dynamic" : "frozen", result.fit_seconds);
    table.BeginRow();
    table.AddCell(dynamic ? "dynamic (LATTICE-style)" : "frozen (Firzen)");
    table.AddCell(100.0 * result.cold.metrics.mrr);
    table.AddCell(100.0 * result.warm.metrics.mrr);
    table.AddCell(100.0 * result.hm.mrr);
    table.AddCell(result.fit_seconds, 2);
  }
  table.Print();
  return 0;
}
