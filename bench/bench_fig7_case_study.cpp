// Fig. 7: interpretability case study. For sampled query items we list the
// five most similar items under (1) modality-only, (2) KG-only and
// (3) complete representations, annotated with ground-truth latent cluster
// and KG brand/category so the diversity-vs-relevance effect is visible:
// modality-only neighbors collapse onto one visual cluster, KG-only picks up
// noisy entities, the full model balances both.
#include <algorithm>
#include <cmath>

#include "bench/bench_common.h"

#include "src/core/firzen_model.h"

namespace {

using firzen::Index;
using firzen::Matrix;
using firzen::Real;

std::vector<Index> TopSimilar(const Matrix& emb, Index query, Index k) {
  std::vector<std::pair<Real, Index>> scored;
  const Index d = emb.cols();
  auto norm_of = [&](Index r) {
    Real n = 0.0;
    for (Index c = 0; c < d; ++c) n += emb(r, c) * emb(r, c);
    return std::sqrt(n) + 1e-12;
  };
  const Real qn = norm_of(query);
  for (Index i = 0; i < emb.rows(); ++i) {
    if (i == query) continue;
    Real dot = 0.0;
    for (Index c = 0; c < d; ++c) dot += emb(query, c) * emb(i, c);
    scored.emplace_back(dot / (qn * norm_of(i)), i);
  }
  std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                    [](const auto& a, const auto& b) {
                      return a.first > b.first;
                    });
  std::vector<Index> out;
  for (Index j = 0; j < k; ++j) out.push_back(scored[j].second);
  return out;
}

}  // namespace

int main() {
  using namespace firzen;        // NOLINT(build/namespaces)
  using namespace firzen::bench;  // NOLINT(build/namespaces)
  SetLogLevel(LogLevel::kError);
  PrintHeader("Fig. 7: case study — top-5 similar items per representation",
              "paper Fig. 7");

  SyntheticGroundTruth truth;
  const Dataset dataset =
      GenerateSyntheticDataset(BeautySConfig(BenchScale()), &truth);
  const TrainOptions train = BenchTrainOptions();
  FirzenModel model;
  model.Fit(dataset, train);

  // Brand/category per item from the KG for annotation.
  std::vector<Index> brand(static_cast<size_t>(dataset.num_items), -1);
  std::vector<Index> category(static_cast<size_t>(dataset.num_items), -1);
  for (const Triplet& t : dataset.kg.triplets) {
    if (t.head >= dataset.num_items) continue;
    if (dataset.kg.entity_type[static_cast<size_t>(t.tail)] ==
        EntityType::kBrand) {
      brand[static_cast<size_t>(t.head)] = t.tail;
    }
    if (dataset.kg.entity_type[static_cast<size_t>(t.tail)] ==
        EntityType::kCategory) {
      category[static_cast<size_t>(t.head)] = t.tail;
    }
  }

  struct Mode {
    const char* label;
    FirzenOptions gates;
  };
  std::vector<Mode> modes;
  {
    FirzenOptions o;
    o.use_behavior = false;
    o.use_knowledge = false;  // modality only
    modes.push_back({"modality-only", o});
  }
  {
    FirzenOptions o;
    o.use_behavior = false;
    o.use_modality = false;  // KG only
    modes.push_back({"KG-only", o});
  }
  modes.push_back({"complete", FirzenOptions()});

  // Query the most-interacted warm items (the paper samples popular
  // products; cold items have no modality-only representation by design).
  std::vector<Index> interaction_count(static_cast<size_t>(dataset.num_items),
                                       0);
  for (const Interaction& x : dataset.train) {
    ++interaction_count[static_cast<size_t>(x.item)];
  }
  std::vector<Index> queries;
  for (Index want = 0; want < 3; ++want) {
    Index best = -1;
    for (Index i = 0; i < dataset.num_items; ++i) {
      if (std::find(queries.begin(), queries.end(), i) != queries.end()) {
        continue;
      }
      if (best < 0 || interaction_count[static_cast<size_t>(i)] >
                          interaction_count[static_cast<size_t>(best)]) {
        best = i;
      }
    }
    queries.push_back(best);
  }
  for (Index query : queries) {
    std::printf("\nquery item %lld  (cluster %lld, brand %lld, cat %lld)\n",
                static_cast<long long>(query),
                static_cast<long long>(
                    truth.item_cluster[static_cast<size_t>(query)]),
                static_cast<long long>(brand[static_cast<size_t>(query)]),
                static_cast<long long>(category[static_cast<size_t>(query)]));
    for (const Mode& mode : modes) {
      model.RecomputeFinal(dataset, mode.gates, /*cold_expanded=*/false);
      const Matrix emb = model.ItemEmbeddings();
      const auto top = TopSimilar(emb, query, 5);
      Index same_cluster = 0;
      Index same_brand = 0;
      std::printf("  %-13s ->", mode.label);
      for (Index item : top) {
        std::printf(" %lld(c%lld)", static_cast<long long>(item),
                    static_cast<long long>(
                        truth.item_cluster[static_cast<size_t>(item)]));
        if (truth.item_cluster[static_cast<size_t>(item)] ==
            truth.item_cluster[static_cast<size_t>(query)]) {
          ++same_cluster;
        }
        if (brand[static_cast<size_t>(item)] ==
            brand[static_cast<size_t>(query)]) {
          ++same_brand;
        }
      }
      std::printf("   [relevance: %lld/5 same-cluster, diversity: %lld/5 "
                  "same-brand]\n",
                  static_cast<long long>(same_cluster),
                  static_cast<long long>(same_brand));
    }
  }
  std::printf("\nReading: modality-only maximizes visual similarity (same "
              "brand/cluster crowding), KG-only admits noisy-entity "
              "neighbors, the complete representation balances relevance "
              "and diversity (paper Fig. 7 narrative).\n");
  return 0;
}
