// Table VI: normal cold-start item recommendation (Beauty-S). Cold val/test
// interactions are split 1:1 into revealed ("known") links and evaluation
// targets; models may exploit the revealed links at inference.
#include "bench/bench_common.h"

#include "src/data/split.h"

int main() {
  using namespace firzen;        // NOLINT(build/namespaces)
  using namespace firzen::bench;  // NOLINT(build/namespaces)
  SetLogLevel(LogLevel::kError);
  PrintHeader("Table VI: normal cold-start (Beauty-S, known:unknown = 1:1)",
              "paper Table VI");

  const Dataset strict = LoadProfile("Beauty-S");
  Rng rng(606);
  const Dataset normal = MakeNormalColdProtocol(strict, &rng);
  const TrainOptions train = BenchTrainOptions();

  TablePrinter table({"Type", "Method", "R@20", "M@20", "N@20", "H@20",
                      "P@20"});
  for (const ModelInfo& info : AllModels()) {
    auto model = CreateModel(info.name);
    model->Fit(normal, train);
    const EvalResult result = RunNormalColdEval(model.get(), normal, train);
    std::fprintf(stderr, "  [%s] done\n", info.name.c_str());
    table.BeginRow();
    table.AddCell(info.category);
    table.AddCell(info.name);
    AddMetricCells(&table, result.metrics);
  }
  table.Print();
  return 0;
}
