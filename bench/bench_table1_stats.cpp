// Table I: statistics of the four benchmark datasets with constructed
// collaborative knowledge graphs.
#include "bench/bench_common.h"

int main() {
  using namespace firzen;        // NOLINT(build/namespaces)
  using namespace firzen::bench;  // NOLINT(build/namespaces)
  SetLogLevel(LogLevel::kError);
  PrintHeader("Table I: dataset statistics", "paper Table I");

  TablePrinter table({"Dataset", "#Users", "#Items", "#Warm", "#Cold",
                      "#Inter", "AvgInter/U", "AvgInter/I", "Sparsity(%)",
                      "#Entities", "#Relations", "#Triplets"});
  for (const char* name :
       {"Beauty-S", "CellPhones-S", "Clothing-S", "WeixinSports-S"}) {
    const Dataset dataset = LoadProfile(name);
    const DatasetStats s = ComputeDatasetStats(dataset);
    table.BeginRow();
    table.AddCell(s.name);
    table.AddCell(std::to_string(s.num_users));
    table.AddCell(std::to_string(s.num_items));
    table.AddCell(std::to_string(s.num_warm_items));
    table.AddCell(std::to_string(s.num_cold_items));
    table.AddCell(std::to_string(s.num_interactions));
    table.AddCell(s.avg_interactions_per_user, 3);
    table.AddCell(s.avg_interactions_per_item, 3);
    table.AddCell(s.sparsity_percent, 3);
    table.AddCell(std::to_string(s.num_entities));
    table.AddCell(std::to_string(s.num_relations));
    table.AddCell(std::to_string(s.num_triplets));
  }
  table.Print();
  return 0;
}
