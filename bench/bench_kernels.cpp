// Kernel microbenchmarks (google-benchmark): the computational primitives
// dominating training cost — SpMM over the frozen graphs, dense Gemm, the
// kNN item-item graph build, the per-epoch KG attention rebuild (DESIGN.md
// §4 ablation candidate), lazy vs dense Adam, and top-K ranking selection.
#include <benchmark/benchmark.h>

#include "src/data/synthetic.h"
#include "src/graph/collaborative_kg.h"
#include "src/graph/knn_graph.h"
#include "src/models/kg_common.h"
#include "src/tensor/csr.h"
#include "src/tensor/init.h"
#include "src/tensor/ops.h"
#include "src/tensor/optim.h"
#include "src/util/rng.h"

namespace firzen {
namespace {

CsrMatrix RandomGraph(Index n, Index degree, uint64_t seed) {
  Rng rng(seed);
  std::vector<CooEntry> entries;
  for (Index r = 0; r < n; ++r) {
    for (Index d = 0; d < degree; ++d) {
      entries.push_back({r, rng.UniformInt(n), 1.0});
    }
  }
  return CsrMatrix::FromCoo(n, n, std::move(entries)).SymNormalized();
}

void BM_SpMM(benchmark::State& state) {
  const Index n = state.range(0);
  const Index d = state.range(1);
  const CsrMatrix graph = RandomGraph(n, 10, 1);
  Rng rng(2);
  Matrix x(n, d);
  x.FillNormal(&rng, 1.0);
  Matrix y;
  for (auto _ : state) {
    graph.SpMM(x, &y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * graph.nnz() * d);
}
BENCHMARK(BM_SpMM)->Args({2000, 32})->Args({2000, 64})->Args({8000, 32});

void BM_Gemm(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(3);
  Matrix a(n, 64);
  a.FillNormal(&rng, 1.0);
  Matrix b(n, 64);
  b.FillNormal(&rng, 1.0);
  Matrix c;
  for (auto _ : state) {
    Gemm(false, true, 1.0, a, b, 0.0, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * 64);
}
BENCHMARK(BM_Gemm)->Arg(256)->Arg(512);

void BM_KnnGraphBuild(benchmark::State& state) {
  const Index items = state.range(0);
  Rng rng(4);
  Matrix features(items, 48);
  features.FillNormal(&rng, 1.0);
  KnnGraphOptions options;
  options.top_k = 10;
  for (auto _ : state) {
    CsrMatrix g = BuildItemItemGraph(features, options);
    benchmark::DoNotOptimize(g.nnz());
  }
  state.SetItemsProcessed(state.iterations() * items * items);
}
BENCHMARK(BM_KnnGraphBuild)->Arg(400)->Arg(800)->Unit(benchmark::kMillisecond);

void BM_KgAttentionRebuild(benchmark::State& state) {
  const Dataset dataset = GenerateSyntheticDataset(BeautySConfig(0.2));
  const CollaborativeKg ckg =
      BuildCollaborativeKg(dataset.train, dataset.num_users, dataset.kg);
  Rng rng(5);
  Matrix entity(ckg.num_entities, 32);
  entity.FillNormal(&rng, 0.1);
  Matrix relation(ckg.num_relations, 32);
  relation.FillNormal(&rng, 0.1);
  Matrix proj(ckg.num_relations, 32, 1.0);
  for (auto _ : state) {
    CsrMatrix att = ComputeKgAttention(ckg, entity, relation, proj);
    benchmark::DoNotOptimize(att.nnz());
  }
  state.SetItemsProcessed(state.iterations() * ckg.topology.nnz());
}
BENCHMARK(BM_KgAttentionRebuild)->Unit(benchmark::kMillisecond);

void BM_AdamStep(benchmark::State& state) {
  const bool lazy = state.range(0) != 0;
  Rng rng(6);
  Tensor table = XavierVariable(20000, 32, &rng);
  Adam::Options options;
  options.lazy = lazy;
  Adam adam(options);
  // Sparse batch touches 512 rows.
  std::vector<Index> idx;
  for (Index i = 0; i < 512; ++i) idx.push_back(rng.UniformInt(20000));
  for (auto _ : state) {
    Tensor batch = ops::GatherRows(table, idx);
    Tensor loss = ops::SumSquares(batch);
    Backward(loss);
    adam.Step({table});
  }
  state.SetLabel(lazy ? "lazy" : "dense");
}
BENCHMARK(BM_AdamStep)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_TopKSelection(benchmark::State& state) {
  const Index items = state.range(0);
  Rng rng(7);
  std::vector<Real> scores(static_cast<size_t>(items));
  for (auto& s : scores) s = rng.Normal();
  std::vector<std::pair<Real, Index>> heap;
  for (auto _ : state) {
    heap.clear();
    auto worse = [](const auto& a, const auto& b) {
      return a.first > b.first;
    };
    for (Index i = 0; i < items; ++i) {
      const std::pair<Real, Index> e{scores[static_cast<size_t>(i)], i};
      if (heap.size() < 20) {
        heap.push_back(e);
        std::push_heap(heap.begin(), heap.end(), worse);
      } else if (worse(e, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), worse);
        heap.back() = e;
        std::push_heap(heap.begin(), heap.end(), worse);
      }
    }
    benchmark::DoNotOptimize(heap.data());
  }
  state.SetItemsProcessed(state.iterations() * items);
}
BENCHMARK(BM_TopKSelection)->Arg(1000)->Arg(10000);

void BM_AutogradBprStep(benchmark::State& state) {
  // One full LightGCN-style training step: propagate, gather, BPR, backward.
  const Index n = 3000;
  const CsrMatrix graph_val = RandomGraph(n, 8, 8);
  auto graph = std::make_shared<const CsrMatrix>(graph_val);
  Rng rng(9);
  Tensor table = XavierVariable(n, 32, &rng);
  std::vector<Index> users;
  std::vector<Index> pos;
  std::vector<Index> neg;
  for (Index i = 0; i < 512; ++i) {
    users.push_back(rng.UniformInt(n));
    pos.push_back(rng.UniformInt(n));
    neg.push_back(rng.UniformInt(n));
  }
  Adam adam(Adam::Options{});
  for (auto _ : state) {
    using namespace ops;  // NOLINT(build/namespaces)
    Tensor h = SpMM(graph, table);
    h = Scale(Add(h, table), 0.5);
    Tensor eu = GatherRows(h, users);
    Tensor ep = GatherRows(h, pos);
    Tensor en = GatherRows(h, neg);
    Tensor diff = Sub(RowDot(eu, ep), RowDot(eu, en));
    Tensor loss = Scale(ReduceMean(LogSigmoid(diff)), -1.0);
    Backward(loss);
    adam.Step({table});
    benchmark::DoNotOptimize(loss.scalar());
  }
}
BENCHMARK(BM_AutogradBprStep)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace firzen

BENCHMARK_MAIN();
