// Kernel microbenchmarks (google-benchmark): the computational primitives
// dominating training cost — SpMM over the frozen graphs, dense Gemm, the
// kNN item-item graph build, the per-epoch KG attention rebuild (DESIGN.md
// §4 ablation candidate), lazy vs dense Adam, and top-K ranking selection.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>

#include "src/data/synthetic.h"
#include "src/eval/topk.h"
#include "src/graph/collaborative_kg.h"
#include "src/graph/knn_graph.h"
#include "src/models/kg_common.h"
#include "src/tensor/csr.h"
#include "src/tensor/init.h"
#include "src/tensor/ops.h"
#include "src/tensor/quantized.h"
#include "src/tensor/optim.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace firzen {
namespace {

CsrMatrix RandomGraph(Index n, Index degree, uint64_t seed) {
  Rng rng(seed);
  std::vector<CooEntry> entries;
  for (Index r = 0; r < n; ++r) {
    for (Index d = 0; d < degree; ++d) {
      entries.push_back({r, rng.UniformInt(n), 1.0});
    }
  }
  return CsrMatrix::FromCoo(n, n, std::move(entries)).SymNormalized();
}

// -------------------------------------------------------------------------
// Seed reference kernels, kept verbatim so every BM_*SeedRef case pins the
// pre-blocked/pre-parallel baseline and speedups are measurable from one
// binary (compare against the matching BM_Gemm / BM_SpMM / BM_BatchTopK
// case in BENCH_kernels.json).
// -------------------------------------------------------------------------

void SeedRefGemmNN(const Matrix& a, const Matrix& b, Matrix* c) {
  const Index m = a.rows();
  const Index k = a.cols();
  const Index n = b.cols();
  c->Resize(m, n);
  for (Index i = 0; i < m; ++i) {
    const Real* arow = a.row(i);
    Real* crow = c->row(i);
    for (Index p = 0; p < k; ++p) {
      const Real av = arow[p];
      if (av == 0.0) continue;
      const Real* brow = b.row(p);
      for (Index j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void SeedRefSpMM(const CsrMatrix& m, const Matrix& x, Matrix* y) {
  y->Resize(m.rows(), x.cols());
  const Index d = x.cols();
  for (Index r = 0; r < m.rows(); ++r) {
    Real* out = y->row(r);
    for (Index p = m.row_ptr()[r]; p < m.row_ptr()[r + 1]; ++p) {
      const Real v = m.values()[static_cast<size_t>(p)];
      const Real* in = x.row(m.col_idx()[static_cast<size_t>(p)]);
      for (Index c = 0; c < d; ++c) out[c] += v * in[c];
    }
  }
}

// Interaction-graph profiles at benchmark scale: Amazon-Beauty-like tail
// sparsity (avg degree ~9) and the denser Weixin-Sports-like profile.
struct SparsityProfile {
  Index n;
  Index degree;
};
constexpr SparsityProfile kAmazonLike{12000, 9};
constexpr SparsityProfile kWeixinLike{6000, 25};

void BM_SpMM(benchmark::State& state) {
  const Index n = state.range(0);
  const Index degree = state.range(1);
  const Index d = state.range(2);
  const CsrMatrix graph = RandomGraph(n, degree, 1);
  Rng rng(2);
  Matrix x(n, d);
  x.FillNormal(&rng, 1.0);
  Matrix y;
  for (auto _ : state) {
    graph.SpMM(x, &y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * graph.nnz() * d);
  state.SetLabel("threads=" + std::to_string(GlobalPoolThreadCount()));
}
BENCHMARK(BM_SpMM)
    ->Args({2000, 10, 32})
    ->Args({2000, 10, 64})
    ->Args({8000, 10, 32})
    ->Args({kAmazonLike.n, kAmazonLike.degree, 64})
    ->Args({kWeixinLike.n, kWeixinLike.degree, 64});

void BM_SpMMSeedRef(benchmark::State& state) {
  const Index n = state.range(0);
  const Index degree = state.range(1);
  const Index d = state.range(2);
  const CsrMatrix graph = RandomGraph(n, degree, 1);
  Rng rng(2);
  Matrix x(n, d);
  x.FillNormal(&rng, 1.0);
  Matrix y;
  for (auto _ : state) {
    SeedRefSpMM(graph, x, &y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * graph.nnz() * d);
}
BENCHMARK(BM_SpMMSeedRef)
    ->Args({kAmazonLike.n, kAmazonLike.degree, 64})
    ->Args({kWeixinLike.n, kWeixinLike.degree, 64});

void BM_SpMMT(benchmark::State& state) {
  // Backward-propagation path: transpose built once, then reused per step.
  const Index n = state.range(0);
  const CsrMatrix graph = RandomGraph(n, 10, 1);
  Rng rng(2);
  Matrix x(n, 64);
  x.FillNormal(&rng, 1.0);
  Matrix y;
  graph.SpMMT(x, &y);  // warm the cached transpose
  for (auto _ : state) {
    graph.SpMMT(x, &y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * graph.nnz() * 64);
}
BENCHMARK(BM_SpMMT)->Arg(8000);

// Gemm at the model's operating points: (m, k, n) with k the embedding
// width 64/128/256. {512, 128, 512} is the acceptance-gate shape.
void BM_Gemm(benchmark::State& state) {
  const Index m = state.range(0);
  const Index k = state.range(1);
  const Index n = state.range(2);
  Rng rng(3);
  Matrix a(m, k);
  a.FillNormal(&rng, 1.0);
  Matrix b(k, n);
  b.FillNormal(&rng, 1.0);
  Matrix c;
  for (auto _ : state) {
    Gemm(false, false, 1.0, a, b, 0.0, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
  state.SetLabel("threads=" + std::to_string(GlobalPoolThreadCount()));
}
BENCHMARK(BM_Gemm)
    ->Args({512, 64, 512})
    ->Args({512, 128, 512})
    ->Args({512, 256, 512})
    ->Args({2048, 64, 2048});

void BM_GemmSeedRef(benchmark::State& state) {
  const Index m = state.range(0);
  const Index k = state.range(1);
  const Index n = state.range(2);
  Rng rng(3);
  Matrix a(m, k);
  a.FillNormal(&rng, 1.0);
  Matrix b(k, n);
  b.FillNormal(&rng, 1.0);
  Matrix c;
  for (auto _ : state) {
    SeedRefGemmNN(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
}
BENCHMARK(BM_GemmSeedRef)
    ->Args({512, 64, 512})
    ->Args({512, 128, 512})
    ->Args({512, 256, 512});

// Large-batch transposed Gemm at eval/scoring shape (512-user batch against
// a catalog slice). The kernel packs B^T in bounded kNc-column panels;
// BM_GemmTransBSeedRef pins the pre-panel behavior — materialize the whole
// transpose (a catalog-sized O(k*n) transient), then run the blocked kernel.
void BM_GemmTransBPanel(benchmark::State& state) {
  const Index m = state.range(0);
  const Index k = state.range(1);
  const Index n = state.range(2);
  Rng rng(3);
  Matrix a(m, k);
  a.FillNormal(&rng, 1.0);
  Matrix b(n, k);  // item-table layout
  b.FillNormal(&rng, 1.0);
  Matrix c;
  for (auto _ : state) {
    Gemm(false, true, 1.0, a, b, 0.0, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
  state.SetLabel("threads=" + std::to_string(GlobalPoolThreadCount()));
}
BENCHMARK(BM_GemmTransBPanel)->Args({512, 64, 8192})->Args({512, 64, 32768});

void BM_GemmTransBSeedRef(benchmark::State& state) {
  const Index m = state.range(0);
  const Index k = state.range(1);
  const Index n = state.range(2);
  Rng rng(3);
  Matrix a(m, k);
  a.FillNormal(&rng, 1.0);
  Matrix b(n, k);
  b.FillNormal(&rng, 1.0);
  Matrix c;
  for (auto _ : state) {
    Matrix bt = b.Transposed();
    Gemm(false, false, 1.0, a, bt, 0.0, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
  state.SetLabel("threads=" + std::to_string(GlobalPoolThreadCount()));
}
BENCHMARK(BM_GemmTransBSeedRef)->Args({512, 64, 8192})->Args({512, 64, 32768});

// Scoring-transposed Gemm (user batch x item table^T), the serving hot path.
void BM_GemmScoreBT(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(3);
  Matrix a(n, 64);
  a.FillNormal(&rng, 1.0);
  Matrix b(n, 64);
  b.FillNormal(&rng, 1.0);
  Matrix c;
  for (auto _ : state) {
    Gemm(false, true, 1.0, a, b, 0.0, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * 64);
}
BENCHMARK(BM_GemmScoreBT)->Arg(256)->Arg(512);

// Quantized scoring kernel at the same shapes as BM_GemmScoreBT (its fp32
// baseline in BENCH_kernels.json): user batch pre-quantized once per
// iteration — as DotProductScorer does per request batch — against the
// pre-built int8 catalog, on whatever SIMD tier dispatch picked (recorded
// in the JSON context as firzen_simd_tier). The footprint_reduction_x
// counter is the resident fp32/Real item table size over the quantized
// table size (codes + scales + row sums) — the ~4x memory claim.
void BM_GemmBTQuant(benchmark::State& state) {
  const Index n = state.range(0);
  const Index k = 64;
  Rng rng(3);
  Matrix a(n, k);
  a.FillNormal(&rng, 1.0);
  Matrix b(n, k);
  b.FillNormal(&rng, 1.0);
  const QuantizedMatrix qb = QuantizedMatrix::FromMatrix(b);
  std::vector<int8_t> qa(static_cast<size_t>(n * qb.stride()));
  std::vector<float> qa_scales(static_cast<size_t>(n));
  Matrix c(n, n);
  for (auto _ : state) {
    for (Index r = 0; r < n; ++r) {
      QuantizeRow(a.row(r), k, qb.stride(), qa.data() + r * qb.stride(),
                  &qa_scales[static_cast<size_t>(r)]);
    }
    GemmBTQuant(qa.data(), n, k, qb.stride(), qa_scales.data(), qb, 0, n,
                MatrixView(&c));
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * k);
  const double real_bytes = static_cast<double>(n) * k * sizeof(Real);
  state.counters["footprint_reduction_x"] =
      real_bytes / static_cast<double>(qb.byte_size());
  state.SetLabel(std::string("tier=") + SimdTierName(DispatchedSimdTier()));
}
BENCHMARK(BM_GemmBTQuant)->Arg(256)->Arg(512);

void BM_KnnGraphBuild(benchmark::State& state) {
  const Index items = state.range(0);
  Rng rng(4);
  Matrix features(items, 48);
  features.FillNormal(&rng, 1.0);
  KnnGraphOptions options;
  options.top_k = 10;
  for (auto _ : state) {
    CsrMatrix g = BuildItemItemGraph(features, options);
    benchmark::DoNotOptimize(g.nnz());
  }
  state.SetItemsProcessed(state.iterations() * items * items);
}
BENCHMARK(BM_KnnGraphBuild)->Arg(400)->Arg(800)->Unit(benchmark::kMillisecond);

void BM_KgAttentionRebuild(benchmark::State& state) {
  const Dataset dataset = GenerateSyntheticDataset(BeautySConfig(0.2));
  const CollaborativeKg ckg =
      BuildCollaborativeKg(dataset.train, dataset.num_users, dataset.kg);
  Rng rng(5);
  Matrix entity(ckg.num_entities, 32);
  entity.FillNormal(&rng, 0.1);
  Matrix relation(ckg.num_relations, 32);
  relation.FillNormal(&rng, 0.1);
  Matrix proj(ckg.num_relations, 32, 1.0);
  for (auto _ : state) {
    CsrMatrix att = ComputeKgAttention(ckg, entity, relation, proj);
    benchmark::DoNotOptimize(att.nnz());
  }
  state.SetItemsProcessed(state.iterations() * ckg.topology.nnz());
}
BENCHMARK(BM_KgAttentionRebuild)->Unit(benchmark::kMillisecond);

void BM_AdamStep(benchmark::State& state) {
  const bool lazy = state.range(0) != 0;
  Rng rng(6);
  Tensor table = XavierVariable(20000, 32, &rng);
  Adam::Options options;
  options.lazy = lazy;
  Adam adam(options);
  // Sparse batch touches 512 rows.
  std::vector<Index> idx;
  for (Index i = 0; i < 512; ++i) idx.push_back(rng.UniformInt(20000));
  for (auto _ : state) {
    Tensor batch = ops::GatherRows(table, idx);
    Tensor loss = ops::SumSquares(batch);
    Backward(loss);
    adam.Step({table});
  }
  state.SetLabel(lazy ? "lazy" : "dense");
}
BENCHMARK(BM_AdamStep)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// Batched serving-style top-20: a (users x items) score matrix reduced to
// per-user ranked lists. BM_BatchTopK shards users across the pool with
// per-thread TopKHeap scratch; BM_BatchTopKSeedRef is the seed approach —
// copy every item into a vector and partial_sort it, serially per user.
void BM_BatchTopK(benchmark::State& state) {
  const Index users = state.range(0);
  const Index items = state.range(1);
  constexpr Index kTop = 20;
  Rng rng(7);
  Matrix scores(users, items);
  scores.FillNormal(&rng, 1.0);
  std::vector<std::vector<ScoredItem>> results(static_cast<size_t>(users));
  for (auto _ : state) {
    ParallelFor(
        ThreadPool::Global(), users,
        [&](Index begin, Index end) {
          TopKHeap heap(kTop);
          for (Index u = begin; u < end; ++u) {
            const Real* row = scores.row(u);
            heap.Reset();
            for (Index i = 0; i < items; ++i) heap.Push(i, row[i]);
            results[static_cast<size_t>(u)] = heap.Sorted();
          }
        },
        /*min_shard_size=*/8);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() * users * items);
  state.SetLabel("threads=" + std::to_string(GlobalPoolThreadCount()));
}
BENCHMARK(BM_BatchTopK)->Args({256, 10000})->Args({512, 40000});

void BM_BatchTopKSeedRef(benchmark::State& state) {
  const Index users = state.range(0);
  const Index items = state.range(1);
  constexpr Index kTop = 20;
  Rng rng(7);
  Matrix scores(users, items);
  scores.FillNormal(&rng, 1.0);
  std::vector<std::vector<ScoredItem>> results(static_cast<size_t>(users));
  for (auto _ : state) {
    for (Index u = 0; u < users; ++u) {
      const Real* row = scores.row(u);
      std::vector<ScoredItem> ranked;
      ranked.reserve(static_cast<size_t>(items));
      for (Index i = 0; i < items; ++i) ranked.push_back({i, row[i]});
      std::partial_sort(ranked.begin(), ranked.begin() + kTop, ranked.end(),
                        [](const ScoredItem& a, const ScoredItem& b) {
                          return a.score != b.score ? a.score > b.score
                                                    : a.item < b.item;
                        });
      ranked.resize(kTop);
      results[static_cast<size_t>(u)] = std::move(ranked);
    }
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() * users * items);
}
BENCHMARK(BM_BatchTopKSeedRef)->Args({256, 10000});

void BM_AutogradBprStep(benchmark::State& state) {
  // One full LightGCN-style training step: propagate, gather, BPR, backward.
  const Index n = 3000;
  const CsrMatrix graph_val = RandomGraph(n, 8, 8);
  auto graph = std::make_shared<const CsrMatrix>(graph_val);
  Rng rng(9);
  Tensor table = XavierVariable(n, 32, &rng);
  std::vector<Index> users;
  std::vector<Index> pos;
  std::vector<Index> neg;
  for (Index i = 0; i < 512; ++i) {
    users.push_back(rng.UniformInt(n));
    pos.push_back(rng.UniformInt(n));
    neg.push_back(rng.UniformInt(n));
  }
  Adam adam(Adam::Options{});
  for (auto _ : state) {
    using namespace ops;  // NOLINT(build/namespaces)
    Tensor h = SpMM(graph, table);
    h = Scale(Add(h, table), 0.5);
    Tensor eu = GatherRows(h, users);
    Tensor ep = GatherRows(h, pos);
    Tensor en = GatherRows(h, neg);
    Tensor diff = Sub(RowDot(eu, ep), RowDot(eu, en));
    Tensor loss = Scale(ReduceMean(LogSigmoid(diff)), -1.0);
    Backward(loss);
    adam.Step({table});
    benchmark::DoNotOptimize(loss.scalar());
  }
}
BENCHMARK(BM_AutogradBprStep)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace firzen

// Hand-rolled main (instead of BENCHMARK_MAIN) so the JSON context records
// which SIMD tier the quantized kernels actually dispatched — a perf number
// without its tier is not comparable across hosts or FIRZEN_SIMD overrides.
int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "firzen_simd_tier",
      firzen::SimdTierName(firzen::DispatchedSimdTier()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
