// End-to-end serving benchmark: fused block-streaming ScoreBlock + bounded
// min-heap Top-K (ServingEngine) against the legacy materialize-then-rank
// path (full users x catalog score matrix, then per-user heaps). The fused
// path's peak transient is user_batch * item_block, independent of catalog
// size — the label records both footprints. Results are verified
// bit-identical at startup before timing. BM_ServingDistributed serves the
// same catalog through 1/2/4 shard-server sockets behind ONE coordinator,
// parity-gated against the in-process sharded engine, charting the wire +
// fan-out overhead. BM_ServingAdmission charts what
// the admission front end buys: 8 concurrent single-request threads served
// unbatched vs coalesced into fused user batches (one catalog stream per
// batch instead of one per request), with p50/p95/p99 per-request latency
// counters alongside the throughput.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/data/dataset.h"
#include "src/eval/admission.h"
#include "src/eval/serving.h"
#include "src/eval/sharded_serving.h"
#include "src/eval/topk.h"
#include "src/models/serialize.h"
#include "src/serve/distributed_serving.h"
#include "src/serve/shard_server.h"
#include "src/tensor/quantized.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace firzen {
namespace {

struct ServingWorld {
  Dataset dataset;
  StaticRecommender model;
  std::vector<Index> users;
};

ServingWorld* MakeWorld(Index num_users, Index num_items, Index dim,
                        Index batch) {
  Rng rng(13);
  Matrix user_emb(num_users, dim);
  user_emb.FillNormal(&rng, 1.0);
  Matrix item_emb(num_items, dim);
  item_emb.FillNormal(&rng, 1.0);
  auto* world = new ServingWorld{
      Dataset{}, StaticRecommender("bench", std::move(user_emb),
                                   std::move(item_emb)),
      {}};
  world->dataset.num_users = num_users;
  world->dataset.num_items = num_items;
  world->dataset.is_cold_item.assign(static_cast<size_t>(num_items), false);
  // Sparse synthetic train history so exclusion lookups are exercised.
  for (Index u = 0; u < num_users; ++u) {
    for (int t = 0; t < 8; ++t) {
      world->dataset.train.push_back({u, rng.UniformInt(num_items)});
    }
  }
  for (Index u = 0; u < batch; ++u) {
    world->users.push_back(u % num_users);
  }
  return world;
}

std::vector<std::vector<Recommendation>> MaterializeThenRank(
    const StaticRecommender& model,
    const std::vector<std::vector<Index>>& seen,
    const std::vector<Index>& users, Index k, Matrix* scores) {
  model.Score(users, scores);  // full users x catalog matrix
  std::vector<std::vector<Recommendation>> results(users.size());
  ParallelFor(
      ThreadPool::Global(), static_cast<Index>(users.size()),
      [&](Index begin, Index end) {
        TopKHeap heap(k);
        for (Index r = begin; r < end; ++r) {
          const auto& exclude = seen[static_cast<size_t>(
              users[static_cast<size_t>(r)])];
          const Real* row = scores->row(r);
          heap.Reset();
          for (Index item = 0; item < scores->cols(); ++item) {
            if (std::binary_search(exclude.begin(), exclude.end(), item)) {
              continue;
            }
            heap.Push(item, row[item]);
          }
          const auto& top = heap.Sorted();
          results[static_cast<size_t>(r)].assign(top.size(), {});
          for (size_t j = 0; j < top.size(); ++j) {
            results[static_cast<size_t>(r)][j] = {top[j].item, top[j].score};
          }
        }
      },
      /*min_shard_size=*/8);
  return results;
}

std::vector<RecRequest> MakeRequests(const std::vector<Index>& users,
                                     Index k) {
  std::vector<RecRequest> requests;
  requests.reserve(users.size());
  for (Index user : users) {
    RecRequest request;
    request.user = user;
    request.k = k;
    requests.push_back(std::move(request));
  }
  return requests;
}

// Both paths must agree bit-for-bit; abort the benchmark binary otherwise so
// a regression can never report a "speedup".
void CheckParity(const ServingWorld& world, const ServingEngine& engine,
                 Index k) {
  Matrix scores;
  const auto expected = MaterializeThenRank(
      world.model, world.dataset.TrainItemsByUser(), world.users, k, &scores);
  const auto got = engine.RecommendBatch(MakeRequests(world.users, k));
  if (got.size() != expected.size()) std::abort();
  for (size_t r = 0; r < got.size(); ++r) {
    if (got[r].items.size() != expected[r].size()) std::abort();
    for (size_t j = 0; j < expected[r].size(); ++j) {
      if (got[r].items[j].item != expected[r][j].item ||
          got[r].items[j].score != expected[r][j].score) {
        std::fprintf(stderr, "serving parity failure at user row %zu\n", r);
        std::abort();
      }
    }
  }
}

std::string FootprintLabel(Index batch, Index block, Index num_items) {
  const double panel_mb =
      static_cast<double>(batch) * block * sizeof(Real) / (1 << 20);
  const double full_mb =
      static_cast<double>(batch) * num_items * sizeof(Real) / (1 << 20);
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "panel=%.1fMB full=%.1fMB threads=%d", panel_mb, full_mb,
                GlobalPoolThreadCount());
  return buf;
}

void BM_ServingFused(benchmark::State& state) {
  const Index num_items = state.range(0);
  const Index batch = state.range(1);
  constexpr Index kTop = 20;
  static ServingWorld* world = nullptr;
  static Index world_items = -1;
  static Index world_batch = -1;
  if (world_items != num_items || world_batch != batch) {
    delete world;
    world = MakeWorld(4096, num_items, 64, batch);
    world_items = num_items;
    world_batch = batch;
  }
  ServingEngineOptions options;  // default bounded item_block
  ServingEngine engine(&world->model, world->dataset, options);
  CheckParity(*world, engine, kTop);
  const auto requests = MakeRequests(world->users, kTop);
  for (auto _ : state) {
    auto responses = engine.RecommendBatch(requests);
    benchmark::DoNotOptimize(responses.data());
  }
  state.SetItemsProcessed(state.iterations() * batch * num_items);
  state.SetLabel(FootprintLabel(batch, options.item_block, num_items));
}
BENCHMARK(BM_ServingFused)
    ->Args({131072, 64})
    ->Args({131072, 256})
    ->Unit(benchmark::kMillisecond);

void BM_ServingMaterializeSeedRef(benchmark::State& state) {
  const Index num_items = state.range(0);
  const Index batch = state.range(1);
  constexpr Index kTop = 20;
  ServingWorld* world = MakeWorld(4096, num_items, 64, batch);
  const auto seen = world->dataset.TrainItemsByUser();
  Matrix scores;  // reused, but still the full batch x catalog footprint
  for (auto _ : state) {
    auto results =
        MaterializeThenRank(world->model, seen, world->users, kTop, &scores);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() * batch * num_items);
  state.SetLabel(FootprintLabel(batch, num_items, num_items));
  delete world;
}
BENCHMARK(BM_ServingMaterializeSeedRef)
    ->Args({131072, 64})
    ->Args({131072, 256})
    ->Unit(benchmark::kMillisecond);

// Throughput scaling of ONE shared engine under concurrent request
// threads (the thread-safe shared-scorer contract): every benchmark thread
// drives the same ServingEngine with its own request batch. Parity with
// the single-threaded reference is asserted once at setup. 1/2/4 request
// threads chart the scaling curve in BENCH_kernels.json.
void BM_ServingConcurrent(benchmark::State& state) {
  const Index num_items = state.range(0);
  const Index batch = state.range(1);
  constexpr Index kTop = 20;
  static std::mutex setup_mu;
  static ServingWorld* world = nullptr;
  static ServingEngine* engine = nullptr;
  static Index world_items = -1;
  static Index world_batch = -1;
  {
    // All benchmark threads enter; first one (re)builds the shared world.
    std::lock_guard<std::mutex> lock(setup_mu);
    if (world_items != num_items || world_batch != batch) {
      delete engine;
      delete world;
      world = MakeWorld(4096, num_items, 64, batch);
      engine = new ServingEngine(&world->model, world->dataset);
      CheckParity(*world, *engine, kTop);
      world_items = num_items;
      world_batch = batch;
    }
  }
  // Per-thread request slice: same users, rotated so concurrent threads
  // exercise distinct gather batches against the one shared scorer.
  std::vector<Index> users = world->users;
  std::rotate(users.begin(),
              users.begin() + (static_cast<size_t>(state.thread_index()) *
                               7 % users.size()),
              users.end());
  const auto requests = MakeRequests(users, kTop);
  for (auto _ : state) {
    auto responses = engine->RecommendBatch(requests);
    benchmark::DoNotOptimize(responses.data());
  }
  state.SetItemsProcessed(state.iterations() * batch * num_items);
  if (state.thread_index() == 0) {
    state.SetLabel(FootprintLabel(batch, ServingEngineOptions{}.item_block,
                                  num_items) +
                   " req_threads=" + std::to_string(state.threads()));
  }
}
BENCHMARK(BM_ServingConcurrent)
    ->Args({131072, 64})
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Sharded-catalog serving: the item table partitioned across 1/2/4 sibling
// shard views of ONE base scorer, per-shard top-K merged bit-exactly
// (asserted against the single-engine answer at setup), crossed with 1/4
// concurrent request threads sharing the one sharded engine. Charts what
// horizontal catalog partitioning costs (merge + per-shard arenas) and
// buys (parallel shard ranking) in BENCH_kernels.json.
void BM_ServingSharded(benchmark::State& state) {
  const Index num_items = state.range(0);
  const Index batch = state.range(1);
  const Index shards = state.range(2);
  constexpr Index kTop = 20;
  static std::mutex setup_mu;
  static ServingWorld* world = nullptr;
  static ShardedServingEngine* engine = nullptr;
  static Index world_items = -1;
  static Index world_batch = -1;
  static Index world_shards = -1;
  {
    // All benchmark threads enter; first one (re)builds the shared world.
    std::lock_guard<std::mutex> lock(setup_mu);
    if (world_items != num_items || world_batch != batch ||
        world_shards != shards) {
      delete engine;
      delete world;
      world = MakeWorld(4096, num_items, 64, batch);
      ShardedServingOptions options;
      options.num_shards = shards;
      engine = new ShardedServingEngine(&world->model, world->dataset,
                                        options);
      // Parity gate: the sharded merge must reproduce the single-engine
      // (== seed materialize-then-rank) answer bit-for-bit before timing.
      const ServingEngine reference(&world->model, world->dataset);
      const auto requests = MakeRequests(world->users, kTop);
      const auto want = reference.RecommendBatch(requests);
      const auto got = engine->RecommendBatch(requests);
      if (got.size() != want.size()) std::abort();
      for (size_t r = 0; r < got.size(); ++r) {
        if (got[r].items.size() != want[r].items.size()) std::abort();
        for (size_t j = 0; j < want[r].items.size(); ++j) {
          if (got[r].items[j].item != want[r].items[j].item ||
              got[r].items[j].score != want[r].items[j].score) {
            std::fprintf(stderr,
                         "sharded parity failure at user row %zu (shards=%lld)\n",
                         r, static_cast<long long>(shards));
            std::abort();
          }
        }
      }
      world_items = num_items;
      world_batch = batch;
      world_shards = shards;
    }
  }
  // Per-thread request slice, rotated as in BM_ServingConcurrent.
  std::vector<Index> users = world->users;
  std::rotate(users.begin(),
              users.begin() + (static_cast<size_t>(state.thread_index()) *
                               7 % users.size()),
              users.end());
  const auto requests = MakeRequests(users, kTop);
  for (auto _ : state) {
    auto responses = engine->RecommendBatch(requests);
    benchmark::DoNotOptimize(responses.data());
  }
  state.SetItemsProcessed(state.iterations() * batch * num_items);
  if (state.thread_index() == 0) {
    state.SetLabel(FootprintLabel(batch, ShardedServingOptions{}.item_block,
                                  num_items) +
                   " shards=" + std::to_string(shards) +
                   " req_threads=" + std::to_string(state.threads()));
  }
}
BENCHMARK(BM_ServingSharded)
    ->Args({131072, 64, 1})
    ->Args({131072, 64, 2})
    ->Args({131072, 64, 4})
    ->Threads(1)
    ->Threads(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Distributed serving over real loopback sockets: the same catalog served
// by 1/2/4 in-process ShardServers (each behind its own TCP connection),
// fanned out to by ONE DistributedServingEngine. The parity gate at setup
// asserts the distributed answer is bit-identical to the in-process
// ShardedServingEngine over the same layout — the contract that makes
// moving a shard behind a socket observably free — and after timing the
// run aborts if ANY rpc failed or degraded (a degraded pass would time
// the timeout path, not serving). Charts the wire + fan-out overhead on
// top of BM_ServingSharded; counters record the realized bytes per
// request so protocol bloat shows up in BENCH_kernels.json.
void BM_ServingDistributed(benchmark::State& state) {
  const Index num_items = state.range(0);
  const Index batch = state.range(1);
  const Index shards = state.range(2);
  constexpr Index kTop = 20;
  static ServingWorld* world = nullptr;
  static std::vector<std::unique_ptr<ShardServer>>* servers = nullptr;
  static std::unique_ptr<DistributedServingEngine> engine;
  static Index world_items = -1;
  static Index world_batch = -1;
  static Index world_shards = -1;
  if (world_items != num_items || world_batch != batch ||
      world_shards != shards) {
    engine.reset();
    delete servers;
    delete world;
    world = MakeWorld(4096, num_items, 64, batch);
    const auto shared_state =
        ServingSharedState::FromDataset(world->dataset, num_items);
    servers = new std::vector<std::unique_ptr<ShardServer>>();
    DistributedServingOptions options;
    ShardServerOptions server_options;
    server_options.num_users = world->dataset.num_users;
    for (const ItemBlock& range : MakeShardRanges(num_items, shards)) {
      servers->push_back(std::make_unique<ShardServer>(
          world->model.MakeScorer(), shared_state, range, server_options));
      if (!servers->back()->Start().ok()) std::abort();
      options.shard_addresses.push_back(servers->back()->bound_address());
    }
    auto connected = DistributedServingEngine::Connect(std::move(options));
    if (!connected.ok()) {
      std::fprintf(stderr, "%s\n", connected.status().ToString().c_str());
      std::abort();
    }
    engine = std::move(connected.value());
    // Parity gate: the socket hop must be invisible in the answer.
    ShardedServingOptions sharded_options;
    sharded_options.num_shards = shards;
    const ShardedServingEngine reference(&world->model, world->dataset,
                                         sharded_options);
    const auto requests = MakeRequests(world->users, kTop);
    const auto want = reference.RecommendBatch(requests);
    const auto got = engine->RecommendBatch(requests);
    if (got.size() != want.size()) std::abort();
    for (size_t r = 0; r < got.size(); ++r) {
      if (got[r].status != RecStatus::kOk ||
          got[r].items.size() != want[r].items.size()) {
        std::abort();
      }
      for (size_t j = 0; j < want[r].items.size(); ++j) {
        if (got[r].items[j].item != want[r].items[j].item ||
            got[r].items[j].score != want[r].items[j].score) {
          std::fprintf(stderr,
                       "distributed parity failure at user row %zu "
                       "(shards=%lld)\n",
                       r, static_cast<long long>(shards));
          std::abort();
        }
      }
    }
    world_items = num_items;
    world_batch = batch;
    world_shards = shards;
  }
  const auto requests = MakeRequests(world->users, kTop);
  const uint64_t failed_before = engine->failed_shard_rpcs();
  const uint64_t bytes_before =
      engine->bytes_sent() + engine->bytes_received();
  uint64_t responses_served = 0;
  for (auto _ : state) {
    auto responses = engine->RecommendBatch(requests);
    responses_served += responses.size();
    benchmark::DoNotOptimize(responses.data());
  }
  if (engine->failed_shard_rpcs() != failed_before) {
    std::fprintf(stderr, "distributed benchmark degraded mid-run\n");
    std::abort();
  }
  state.SetItemsProcessed(state.iterations() * batch * num_items);
  const uint64_t wire_bytes =
      engine->bytes_sent() + engine->bytes_received() - bytes_before;
  state.counters["wire_bytes_per_req"] =
      responses_served == 0
          ? 0.0
          : static_cast<double>(wire_bytes) /
                static_cast<double>(responses_served);
  state.SetLabel(FootprintLabel(batch, ShardServerOptions{}.item_block,
                                num_items) +
                 " shards=" + std::to_string(shards) + " transport=tcp");
}
BENCHMARK(BM_ServingDistributed)
    ->Args({131072, 64, 1})
    ->Args({131072, 64, 2})
    ->Args({131072, 64, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Admission batching under concurrent single-request traffic: 8 request
// threads each fire one-user queries at ONE shared engine. admission=0 is
// the unbatched shared-engine baseline (every request pays its own full
// catalog stream); admission=1 attaches an AdmissionController, so
// concurrent requests coalesce into fused user batches — one catalog
// stream, one batched Gemm per panel, per batch. The parity gate at setup
// asserts fused responses are bit-identical to serving each request alone
// (the coalescing contract; scores are batch-size-invariant). Besides
// throughput, the run reports p50/p95/p99 per-request latency and — for
// admission=1 — the realized requests-per-fused-batch factor.
void BM_ServingAdmission(benchmark::State& state) {
  const Index num_items = state.range(0);
  const bool admission = state.range(1) != 0;
  constexpr int kThreads = 8;
  constexpr int kReqsPerThread = 2;  // single-user requests per iteration
  constexpr Index kTop = 20;
  static ServingWorld* world = nullptr;
  static Index world_items = -1;
  if (world_items != num_items) {
    delete world;
    world = MakeWorld(4096, num_items, 64, /*batch=*/64);
    world_items = num_items;
  }
  ServingEngine engine(&world->model, world->dataset);
  AdmissionOptions admission_options;  // max_batch 64, max_wait_us 200
  const AdmissionController controller(&engine, admission_options);
  if (admission) {
    engine.AttachAdmission(&controller);
    // Parity gate: a fused batch must reproduce each request's stand-alone
    // answer bit-for-bit, or the "speedup" would be meaningless.
    std::vector<RecRequest> probe;
    for (Index u = 0; u < kThreads; ++u) {
      RecRequest request;
      request.user = u;
      request.k = kTop;
      probe.push_back(std::move(request));
    }
    const auto fused = controller.RecommendBatch(probe);
    for (size_t i = 0; i < probe.size(); ++i) {
      const RecResponse alone = engine.RecommendBatchDirect({probe[i]})[0];
      if (fused[i].items.size() != alone.items.size()) std::abort();
      for (size_t j = 0; j < alone.items.size(); ++j) {
        if (fused[i].items[j].item != alone.items[j].item ||
            fused[i].items[j].score != alone.items[j].score) {
          std::fprintf(stderr, "admission parity failure at request %zu\n", i);
          std::abort();
        }
      }
    }
  }

  std::mutex latency_mu;
  std::vector<double> latencies_us;  // across all iterations and threads
  const uint64_t fused_before = controller.fused_batches();
  const uint64_t admitted_before = controller.admitted_requests();
  Index user_seed = 0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      const Index base = user_seed + t * 131;
      threads.emplace_back([&, base] {
        std::vector<double> local;
        local.reserve(kReqsPerThread);
        for (int r = 0; r < kReqsPerThread; ++r) {
          RecRequest request;
          request.user = (base + r * 17) %
                         static_cast<Index>(world->dataset.num_users);
          request.k = kTop;
          const auto t0 = std::chrono::steady_clock::now();
          const RecResponse response = engine.Recommend(request);
          const auto t1 = std::chrono::steady_clock::now();
          benchmark::DoNotOptimize(response.items.data());
          local.push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
        }
        std::lock_guard<std::mutex> lock(latency_mu);
        latencies_us.insert(latencies_us.end(), local.begin(), local.end());
      });
    }
    for (std::thread& thread : threads) thread.join();
    user_seed += kThreads * 131;
  }
  state.SetItemsProcessed(state.iterations() * kThreads * kReqsPerThread *
                          num_items);

  std::sort(latencies_us.begin(), latencies_us.end());
  const auto percentile = [&](double q) {
    if (latencies_us.empty()) return 0.0;
    const size_t idx = std::min(
        latencies_us.size() - 1,
        static_cast<size_t>(q * static_cast<double>(latencies_us.size())));
    return latencies_us[idx];
  };
  state.counters["p50_us"] = percentile(0.50);
  state.counters["p95_us"] = percentile(0.95);
  state.counters["p99_us"] = percentile(0.99);
  if (admission) {
    const uint64_t fused = controller.fused_batches() - fused_before;
    const uint64_t admitted = controller.admitted_requests() - admitted_before;
    state.counters["reqs_per_fused_batch"] =
        fused == 0 ? 0.0
                   : static_cast<double>(admitted) / static_cast<double>(fused);
  }
  state.SetLabel(FootprintLabel(kThreads * kReqsPerThread,
                                ServingEngineOptions{}.item_block, num_items) +
                 (admission ? " admission=on" : " admission=off"));
}
BENCHMARK(BM_ServingAdmission)
    ->Args({131072, 0})
    ->Args({131072, 1})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Quantized serving end to end: the fused engine minting its scorer at
// --precision int8 (per-row symmetric int8 catalog + GemmBTQuant on the
// dispatched SIMD tier, recorded in the JSON context) vs the identical
// engine at fp32 (precision=0, the baseline row). The parity gate at setup
// is the int8 bit-identity contract, not fp32 equality (int8 scores
// legitimately differ): the same int8 requests served through a 3-shard
// engine must reproduce the single-engine int8 answer bit-for-bit before
// timing — quality vs fp32 is the quant_quality_test ctest gate's job.
void BM_ServingQuantized(benchmark::State& state) {
  const Index num_items = state.range(0);
  const Index batch = state.range(1);
  const bool int8 = state.range(2) != 0;
  constexpr Index kTop = 20;
  static ServingWorld* world = nullptr;
  static Index world_items = -1;
  static Index world_batch = -1;
  if (world_items != num_items || world_batch != batch) {
    delete world;
    world = MakeWorld(4096, num_items, 64, batch);
    world_items = num_items;
    world_batch = batch;
  }
  ServingEngineOptions options;
  options.precision =
      int8 ? ScoringPrecision::kInt8 : ScoringPrecision::kFp32;
  ServingEngine engine(&world->model, world->dataset, options);
  const auto requests = MakeRequests(world->users, kTop);
  if (int8) {
    ShardedServingOptions sharded_options;
    sharded_options.num_shards = 3;
    sharded_options.precision = ScoringPrecision::kInt8;
    const ShardedServingEngine sharded(&world->model, world->dataset,
                                       sharded_options);
    const auto want = engine.RecommendBatch(requests);
    const auto got = sharded.RecommendBatch(requests);
    if (got.size() != want.size()) std::abort();
    for (size_t r = 0; r < got.size(); ++r) {
      if (got[r].items.size() != want[r].items.size()) std::abort();
      for (size_t j = 0; j < want[r].items.size(); ++j) {
        if (got[r].items[j].item != want[r].items[j].item ||
            got[r].items[j].score != want[r].items[j].score) {
          std::fprintf(stderr,
                       "quantized bit-identity failure at user row %zu\n", r);
          std::abort();
        }
      }
    }
  } else {
    CheckParity(*world, engine, kTop);  // fp32 row: the usual seed parity
  }
  for (auto _ : state) {
    auto responses = engine.RecommendBatch(requests);
    benchmark::DoNotOptimize(responses.data());
  }
  state.SetItemsProcessed(state.iterations() * batch * num_items);
  state.SetLabel(FootprintLabel(batch, options.item_block, num_items) +
                 (int8 ? std::string(" precision=int8 tier=") +
                             SimdTierName(DispatchedSimdTier())
                       : " precision=fp32"));
}
BENCHMARK(BM_ServingQuantized)
    ->Args({131072, 256, 0})
    ->Args({131072, 256, 1})
    ->Unit(benchmark::kMillisecond);

// Open-loop saturation sweep: Poisson arrivals fired at a configured
// offered rate REGARDLESS of whether the server keeps up (open-loop — the
// arrival process never backs off, unlike the closed-loop benchmarks above
// where the next request waits for the previous answer, which silently
// caps offered load at capacity and hides overload behavior). The engine
// sits behind an AdmissionController with a bounded ticket queue
// (max_queue_depth, shed with hysteresis), so driving the offered rate
// past saturation must show BOUNDED served p99 with a NONZERO shed rate
// instead of a collapsing queue. The benchmark arg is the offered rate as
// a percent of the measured closed-loop capacity — {70, 150, 300} bracket
// saturation portably across machines. Counters recorded into
// BENCH_kernels.json: offered_rps, goodput_rps (served requests per
// second of open-loop wall time), shed_rate (shed / offered), and
// p50_ms/p99_ms of SERVED request latency measured from the scheduled
// arrival time (so queueing delay from falling behind schedule counts).
void BM_ServingSaturation(benchmark::State& state) {
  const Index offered_pct = state.range(0);
  constexpr Index kItems = 16384;  // small catalog: fast passes, high rps
  constexpr Index kTop = 10;
  constexpr int kWorkers = 16;     // arrival threads (open-loop firing)
  constexpr int kArrivals = 480;   // Poisson arrivals per iteration
  static ServingWorld* world = nullptr;
  static double capacity_rps = 0.0;
  if (world == nullptr) {
    world = MakeWorld(4096, kItems, 64, /*batch=*/64);
    // Closed-loop capacity probe: 8 threads hammer the coalesced engine
    // back-to-back; the sustained rate anchors the offered-rate sweep.
    ServingEngine engine(&world->model, world->dataset);
    const AdmissionController controller(&engine);
    engine.AttachAdmission(&controller);
    constexpr int kProbeThreads = 8;
    constexpr int kProbeReqs = 40;
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> probes;
    probes.reserve(kProbeThreads);
    for (int t = 0; t < kProbeThreads; ++t) {
      probes.emplace_back([&, t] {
        for (int r = 0; r < kProbeReqs; ++r) {
          RecRequest request;
          request.user = static_cast<Index>((t * kProbeReqs + r) %
                                            world->dataset.num_users);
          request.k = kTop;
          const RecResponse response = engine.Recommend(request);
          benchmark::DoNotOptimize(response.items.data());
        }
      });
    }
    for (std::thread& thread : probes) thread.join();
    const double probe_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    capacity_rps = kProbeThreads * kProbeReqs / probe_s;
  }

  ServingEngine engine(&world->model, world->dataset);
  AdmissionOptions admission_options;
  admission_options.max_batch = 64;
  admission_options.max_wait_us = 200;
  // The backstop must sit BELOW the arrival concurrency: queue depth can
  // never exceed the number of blocked callers, so a watermark above
  // kWorkers would never trip and overload would show up as unbounded
  // worker lag instead of explicit shedding.
  admission_options.max_queue_depth = 8;
  admission_options.resume_queue_depth = 4;
  const AdmissionController controller(&engine, admission_options);
  engine.AttachAdmission(&controller);

  const double offered_rps =
      capacity_rps * static_cast<double>(offered_pct) / 100.0;
  std::vector<double> served_latencies_us;
  uint64_t served = 0;
  uint64_t shed = 0;
  double open_loop_s = 0.0;
  Rng rng(17 + static_cast<uint64_t>(offered_pct));
  for (auto _ : state) {
    // Pre-draw the Poisson schedule (exponential inter-arrival gaps at the
    // offered rate) so no RNG work rides the timed path.
    std::vector<double> schedule_us(kArrivals);
    double clock_us = 0.0;
    for (int i = 0; i < kArrivals; ++i) {
      const double u = static_cast<double>(rng.Uniform());
      clock_us += -std::log(1.0 - u) / offered_rps * 1e6;
      schedule_us[i] = clock_us;
    }
    std::mutex lat_mu;
    std::vector<double> local_latencies;
    std::atomic<uint64_t> local_served{0};
    std::atomic<uint64_t> local_shed{0};
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(kWorkers);
    for (int w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w] {
        std::vector<double> mine;
        // Worker w fires arrivals w, w + kWorkers, ... at their scheduled
        // times; it does NOT wait for the previous answer before the next
        // arrival is due (open-loop within the worker stride).
        for (int i = w; i < kArrivals; i += kWorkers) {
          const auto due =
              start + std::chrono::microseconds(
                          static_cast<int64_t>(schedule_us[i]));
          std::this_thread::sleep_until(due);
          RecRequest request;
          request.user =
              static_cast<Index>((i * 31) % world->dataset.num_users);
          request.k = kTop;
          const RecResponse response = engine.Recommend(request);
          const auto end = std::chrono::steady_clock::now();
          if (response.status == RecStatus::kOk) {
            local_served.fetch_add(1, std::memory_order_relaxed);
            // Latency from the SCHEDULED arrival, not the actual send: a
            // worker running late is queueing delay the client would see.
            mine.push_back(
                std::chrono::duration<double, std::micro>(end - due).count());
          } else {
            local_shed.fetch_add(1, std::memory_order_relaxed);
          }
          benchmark::DoNotOptimize(response.items.data());
        }
        std::lock_guard<std::mutex> lock(lat_mu);
        local_latencies.insert(local_latencies.end(), mine.begin(),
                               mine.end());
      });
    }
    for (std::thread& thread : workers) thread.join();
    open_loop_s +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    served += local_served.load();
    shed += local_shed.load();
    served_latencies_us.insert(served_latencies_us.end(),
                               local_latencies.begin(),
                               local_latencies.end());
  }
  state.SetItemsProcessed(static_cast<int64_t>(served) * kItems);

  std::sort(served_latencies_us.begin(), served_latencies_us.end());
  const auto percentile = [&](double q) {
    if (served_latencies_us.empty()) return 0.0;
    const size_t idx = std::min(
        served_latencies_us.size() - 1,
        static_cast<size_t>(q *
                            static_cast<double>(served_latencies_us.size())));
    return served_latencies_us[idx];
  };
  const double offered = static_cast<double>(served + shed);
  state.counters["offered_rps"] = offered_rps;
  state.counters["goodput_rps"] =
      open_loop_s > 0.0 ? static_cast<double>(served) / open_loop_s : 0.0;
  state.counters["shed_rate"] =
      offered > 0.0 ? static_cast<double>(shed) / offered : 0.0;
  state.counters["p50_ms"] = percentile(0.50) / 1000.0;
  state.counters["p99_ms"] = percentile(0.99) / 1000.0;
  char label[128];
  std::snprintf(label, sizeof(label),
                "offered=%lld%%cap capacity=%.0frps queue_depth=%lld",
                static_cast<long long>(offered_pct), capacity_rps,
                static_cast<long long>(admission_options.max_queue_depth));
  state.SetLabel(label);
}
BENCHMARK(BM_ServingSaturation)
    ->Arg(70)
    ->Arg(150)
    ->Arg(300)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace firzen

// Hand-rolled main (instead of BENCHMARK_MAIN) so the JSON context records
// which SIMD tier the quantized serving rows dispatched.
int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "firzen_simd_tier",
      firzen::SimdTierName(firzen::DispatchedSimdTier()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
