// Table VIII: contribution of each side-information branch at INFERENCE
// time. One full Firzen model is trained; final representations are then
// recomputed with branches gated: BA / BA+KA / BA+VA / BA+TA.
#include "bench/bench_common.h"

#include "src/core/firzen_model.h"
#include "src/eval/harmonic.h"

int main() {
  using namespace firzen;        // NOLINT(build/namespaces)
  using namespace firzen::bench;  // NOLINT(build/namespaces)
  SetLogLevel(LogLevel::kError);
  PrintHeader(
      "Table VIII: inference-time contribution of modality / KG branches",
      "paper Table VIII");

  const Dataset dataset = LoadProfile("Beauty-S");
  const TrainOptions train = BenchTrainOptions();
  FirzenModel model;
  model.Fit(dataset, train);

  struct Gate {
    const char* label;
    bool ka;
    bool va;
    bool ta;
    bool ms;  // MSHGL: off for the pure-behavior row (paper semantics —
              // "BA" means no side-information pathway at all)
  };
  const std::vector<Gate> gates{
      {"BA", false, false, false, false},
      {"BA+KA", true, false, false, true},
      {"BA+VA", false, true, false, true},
      {"BA+TA", false, false, true, true},
      {"BA+KA+VA+TA", true, true, true, true},
  };

  TablePrinter table({"Branches", "Setting", "R@20", "M@20", "N@20", "H@20",
                      "P@20"});
  EvalOptions eval_options;
  eval_options.pool = train.pool;
  for (const Gate& gate : gates) {
    FirzenOptions options = model.options();
    options.use_knowledge = gate.ka;
    options.use_modality = gate.va || gate.ta;
    options.use_image = gate.va;
    options.use_text = gate.ta;
    options.use_mshgl = gate.ms;

    // Warm: training graphs; Cold: expanded + masked graphs. Scorers
    // snapshot the final tables, so re-mint after each recompute.
    model.RecomputeFinal(dataset, options, /*cold_expanded=*/false);
    const EvalResult warm =
        EvaluateRanking(dataset, dataset.warm_test, EvalSetting::kWarm,
                        *model.MakeScorer(), eval_options);
    model.RecomputeFinal(dataset, options, /*cold_expanded=*/true);
    const EvalResult cold =
        EvaluateRanking(dataset, dataset.cold_test, EvalSetting::kCold,
                        *model.MakeScorer(), eval_options);
    const MetricBundle hm = HarmonicMean(cold.metrics, warm.metrics);
    std::fprintf(stderr, "  [%s] done\n", gate.label);
    for (const char* setting : {"Cold", "Warm", "HM"}) {
      table.BeginRow();
      table.AddCell(gate.label);
      table.AddCell(setting);
      const MetricBundle& m = std::string(setting) == "Cold" ? cold.metrics
                              : std::string(setting) == "Warm"
                                  ? warm.metrics
                                  : hm;
      AddMetricCells(&table, m);
    }
  }
  table.Print();
  return 0;
}
