// Table V: robustness to KG noise — inject 20% outlier / duplicate /
// discrepancy triplets and report M@20 plus the average degradation
// percentage for the knowledge-aware models and Firzen.
#include "bench/bench_common.h"

#include "src/data/noise.h"

int main() {
  using namespace firzen;        // NOLINT(build/namespaces)
  using namespace firzen::bench;  // NOLINT(build/namespaces)
  SetLogLevel(LogLevel::kError);
  PrintHeader("Table V: KG-noise robustness (Beauty-S, 20% injected triplets)",
              "paper Table V");

  const Dataset clean = LoadProfile("Beauty-S");
  const TrainOptions train = BenchTrainOptions();
  const std::vector<std::string> methods{"CKE", "KGAT", "KGCN", "KGNNLS",
                                         "MKGAT", "Firzen"};
  const std::vector<KgNoiseKind> kinds{KgNoiseKind::kOutlier,
                                       KgNoiseKind::kDuplicate,
                                       KgNoiseKind::kDiscrepancy};

  TablePrinter table({"Setting", "Method", "Clean M@20", "Outlier M@20",
                      "Out.Dec%", "Duplicate M@20", "Dup.Dec%",
                      "Discrepancy M@20", "Disc.Dec%"});
  for (const std::string& name : methods) {
    // Clean baseline.
    auto model = CreateModel(name);
    const ProtocolResult base = RunStrictColdProtocol(model.get(), clean,
                                                      train);
    std::fprintf(stderr, "  [%s/clean] done\n", name.c_str());
    struct Noised {
      ProtocolResult result;
    };
    std::vector<ProtocolResult> noised;
    for (KgNoiseKind kind : kinds) {
      Dataset noisy = clean;
      Rng rng(404 + static_cast<uint64_t>(kind));
      noisy.kg = InjectKgNoise(clean.kg, kind, 0.2, &rng);
      auto noisy_model = CreateModel(name);
      noised.push_back(
          RunStrictColdProtocol(noisy_model.get(), noisy, train));
      std::fprintf(stderr, "  [%s/%s] done\n", name.c_str(),
                   KgNoiseKindName(kind));
    }
    auto emit = [&](const char* setting,
                    const std::function<Real(const ProtocolResult&)>& pick) {
      table.BeginRow();
      table.AddCell(setting);
      table.AddCell(name);
      const Real clean_m = pick(base);
      table.AddCell(100.0 * clean_m);
      for (size_t k = 0; k < kinds.size(); ++k) {
        const Real noisy_m = pick(noised[k]);
        table.AddCell(100.0 * noisy_m);
        const Real dec =
            clean_m > 0 ? 100.0 * (clean_m - noisy_m) / clean_m : 0.0;
        table.AddCell(dec);
      }
    };
    emit("Cold", [](const ProtocolResult& r) { return r.cold.metrics.mrr; });
    emit("Warm", [](const ProtocolResult& r) { return r.warm.metrics.mrr; });
    emit("HM", [](const ProtocolResult& r) { return r.hm.mrr; });
  }
  table.Print();
  return 0;
}
