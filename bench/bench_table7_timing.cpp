// Table VII: training time and per-user inference time on Beauty-S as the
// side-information branches are enabled one by one:
// BA -> +KA -> +KA+VA -> +KA+VA+TA.
#include "bench/bench_common.h"

#include "src/core/firzen_model.h"
#include "src/util/stopwatch.h"

int main() {
  using namespace firzen;        // NOLINT(build/namespaces)
  using namespace firzen::bench;  // NOLINT(build/namespaces)
  SetLogLevel(LogLevel::kError);
  PrintHeader("Table VII: training / inference time vs enabled components",
              "paper Table VII");

  const Dataset dataset = LoadProfile("Beauty-S");
  TrainOptions train = BenchTrainOptions();
  train.patience = 1000;  // fixed epoch budget for comparable timings

  struct Config {
    const char* label;
    FirzenOptions options;
  };
  std::vector<Config> configs;
  {
    FirzenOptions o;
    o.use_knowledge = false;
    o.use_modality = false;
    configs.push_back({"BA", o});
  }
  {
    FirzenOptions o;
    o.use_modality = false;
    configs.push_back({"BA+KA", o});
  }
  {
    FirzenOptions o;
    o.use_text = false;
    configs.push_back({"BA+KA+VA", o});
  }
  configs.push_back({"BA+KA+VA+TA", FirzenOptions()});

  TablePrinter table({"Components", "Training time (s)",
                      "Cold inference (ms/user)", "Warm inference (ms/user)"});
  for (const Config& config : configs) {
    FirzenModel model(config.options);
    Stopwatch fit_watch;
    model.Fit(dataset, train);
    const double fit_seconds = fit_watch.ElapsedSeconds();

    // Warm inference: batch scoring of 256 users over all items.
    std::vector<Index> users;
    for (Index u = 0; u < std::min<Index>(256, dataset.num_users); ++u) {
      users.push_back(u);
    }
    Matrix scores;
    Stopwatch warm_watch;
    model.Score(users, &scores);
    const double warm_ms = warm_watch.ElapsedMillis() / users.size();

    // Cold inference: includes the one-off graph expansion amortized over
    // the same user batch (the paper reports per-user latency).
    Stopwatch cold_watch;
    model.PrepareColdInference(dataset);
    model.Score(users, &scores);
    const double cold_ms = cold_watch.ElapsedMillis() / users.size();

    std::fprintf(stderr, "  [%s] done (%.1fs train)\n", config.label,
                 fit_seconds);
    table.BeginRow();
    table.AddCell(config.label);
    table.AddCell(fit_seconds, 2);
    table.AddCell(cold_ms, 3);
    table.AddCell(warm_ms, 3);
  }
  table.Print();
  return 0;
}
