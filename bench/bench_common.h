// Shared configuration for the benchmark harness. Every bench binary
// regenerates one table or figure of the paper (see DESIGN.md §3) at a
// CPU-friendly scale.
//
// Environment knobs:
//   FIRZEN_BENCH_FULL=1    larger datasets + longer training (slower,
//                          closer to the paper's operating point)
//   FIRZEN_BENCH_SCALE=x   explicit dataset scale multiplier
//   FIRZEN_BENCH_EPOCHS=n  explicit epoch budget
#ifndef FIRZEN_BENCH_BENCH_COMMON_H_
#define FIRZEN_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "src/data/stats.h"
#include "src/data/synthetic.h"
#include "src/eval/harmonic.h"
#include "src/models/registry.h"
#include "src/util/env.h"
#include "src/util/logging.h"
#include "src/util/table_printer.h"
#include "src/util/thread_pool.h"

namespace firzen {
namespace bench {

inline Real BenchScale() {
  if (GetEnvBool("FIRZEN_BENCH_FULL", false)) return 1.0;
  const long pct = GetEnvInt("FIRZEN_BENCH_SCALE", 0);
  if (pct > 0) return static_cast<Real>(pct) / 100.0;
  return 0.40;
}

inline int BenchEpochs() {
  if (GetEnvBool("FIRZEN_BENCH_FULL", false)) return 40;
  return static_cast<int>(GetEnvInt("FIRZEN_BENCH_EPOCHS", 12));
}

inline TrainOptions BenchTrainOptions() {
  TrainOptions options;
  options.embedding_dim = 32;
  options.epochs = BenchEpochs();
  options.eval_every = 4;
  options.patience = 2;
  options.batch_size = 512;
  options.seed = 2024;
  options.pool = ThreadPool::Global();
  options.verbose = GetEnvBool("FIRZEN_VERBOSE", false);
  return options;
}

inline Dataset LoadProfile(const std::string& name) {
  const Real scale = BenchScale();
  if (name == "Beauty-S") return GenerateSyntheticDataset(BeautySConfig(scale));
  if (name == "CellPhones-S") {
    return GenerateSyntheticDataset(CellPhonesSConfig(scale));
  }
  if (name == "Clothing-S") {
    return GenerateSyntheticDataset(ClothingSConfig(scale));
  }
  return GenerateSyntheticDataset(WeixinSportsSConfig(scale));
}

inline void PrintHeader(const char* what, const char* paper_ref) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n(reproduces %s; synthetic benchmark profiles at scale %.2f "
              "— compare SHAPE, not absolute values; see EXPERIMENTS.md)\n",
              what, paper_ref, BenchScale());
  std::printf("==============================================================\n");
}

/// Adds "label | R | M | N | H | P" percentage cells to a table.
inline void AddMetricCells(TablePrinter* table, const MetricBundle& m) {
  table->AddCell(100.0 * m.recall);
  table->AddCell(100.0 * m.mrr);
  table->AddCell(100.0 * m.ndcg);
  table->AddCell(100.0 * m.hit);
  table->AddCell(100.0 * m.precision);
}

}  // namespace bench
}  // namespace firzen

#endif  // FIRZEN_BENCH_BENCH_COMMON_H_
