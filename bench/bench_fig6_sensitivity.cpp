// Fig. 6: hyperparameter sensitivity of Firzen on Beauty-S — MRR@20 in the
// cold / warm / HM settings while sweeping lambda_k, lambda_m, the beta
// momentum eta, and the item-item kNN size K (same grids as the paper).
#include "bench/bench_common.h"

#include "src/core/firzen_model.h"

int main() {
  using namespace firzen;        // NOLINT(build/namespaces)
  using namespace firzen::bench;  // NOLINT(build/namespaces)
  SetLogLevel(LogLevel::kError);
  PrintHeader("Fig. 6: hyperparameter sensitivity (Beauty-S, MRR@20)",
              "paper Fig. 6 (a)-(d)");

  const Dataset dataset = LoadProfile("Beauty-S");
  const TrainOptions train = BenchTrainOptions();

  auto run = [&](const FirzenOptions& options) {
    FirzenModel model(options);
    return RunStrictColdProtocol(&model, dataset, train);
  };
  TablePrinter table({"Sweep", "Value", "Cold M@20", "Warm M@20",
                      "HM M@20"});
  auto add = [&](const char* sweep, Real value,
                 const ProtocolResult& result) {
    table.BeginRow();
    table.AddCell(sweep);
    table.AddCell(value, 4);
    table.AddCell(100.0 * result.cold.metrics.mrr);
    table.AddCell(100.0 * result.warm.metrics.mrr);
    table.AddCell(100.0 * result.hm.mrr);
    std::fprintf(stderr, "  [%s=%.4f] done\n", sweep, value);
  };

  // (a) lambda_k sweep with lambda_m fixed at 1.10.
  for (Real lk : {0.18, 0.36, 0.54, 0.72}) {
    FirzenOptions o;
    o.lambda_k = lk;
    add("lambda_k", lk, run(o));
  }
  // (b) lambda_m sweep with lambda_k fixed at 0.36. The paper's grid
  // {0.55, 1.10, 1.65, 2.20} is extended downward with this substrate's
  // operating point (0.20) — see EXPERIMENTS.md.
  for (Real lm : {0.20, 0.55, 1.10, 1.65, 2.20}) {
    FirzenOptions o;
    o.lambda_m = lm;
    add("lambda_m", lm, run(o));
  }
  // (c) beta momentum eta.
  for (Real eta : {0.9, 0.99, 0.999, 0.9999}) {
    FirzenOptions o;
    o.beta_momentum = eta;
    add("eta", eta, run(o));
  }
  // (d) item-item neighbors K.
  for (Index k : {5, 10, 15, 20}) {
    FirzenOptions o;
    o.knn_k = k;
    add("K", static_cast<Real>(k), run(o));
  }
  table.Print();
  return 0;
}
