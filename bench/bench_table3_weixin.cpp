// Table III: strict cold-start and warm-start comparison on the industrial
// Weixin-Sports-like profile (dense interactions, many-relation KG).
#include "bench/bench_common.h"

int main() {
  using namespace firzen;        // NOLINT(build/namespaces)
  using namespace firzen::bench;  // NOLINT(build/namespaces)
  SetLogLevel(LogLevel::kError);
  PrintHeader("Table III: strict cold-start + warm-start on Weixin-Sports-S",
              "paper Table III");

  const TrainOptions train = BenchTrainOptions();
  const Dataset dataset = LoadProfile("WeixinSports-S");
  TablePrinter table({"Setting", "Type", "Method", "R@20", "M@20", "N@20",
                      "H@20", "P@20"});
  std::vector<ProtocolResult> results;
  const auto models = AllModels();
  for (const ModelInfo& info : models) {
    auto model = CreateModel(info.name);
    results.push_back(RunStrictColdProtocol(model.get(), dataset, train));
    std::fprintf(stderr, "  [Weixin/%s] done (%.1fs)\n", info.name.c_str(),
                 results.back().fit_seconds);
  }
  for (const char* setting : {"Cold", "Warm", "HM"}) {
    for (size_t m = 0; m < models.size(); ++m) {
      table.BeginRow();
      table.AddCell(setting);
      table.AddCell(models[m].category);
      table.AddCell(models[m].name);
      const MetricBundle& bundle =
          std::string(setting) == "Cold"   ? results[m].cold.metrics
          : std::string(setting) == "Warm" ? results[m].warm.metrics
                                           : results[m].hm;
      AddMetricCells(&table, bundle);
    }
  }
  table.Print();
  return 0;
}
