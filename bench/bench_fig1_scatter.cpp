// Fig. 1: warm-start vs strict cold-start MRR@20 scatter on Beauty-S for
// all sixteen methods. Printed as aligned (x, y) pairs plus an ASCII
// scatter; the paper's claim is that Firzen sits in the top-right corner.
#include <algorithm>

#include "bench/bench_common.h"

int main() {
  using namespace firzen;        // NOLINT(build/namespaces)
  using namespace firzen::bench;  // NOLINT(build/namespaces)
  SetLogLevel(LogLevel::kError);
  PrintHeader("Fig. 1: warm vs strict-cold MRR@20 scatter (Beauty-S)",
              "paper Fig. 1");

  const Dataset dataset = LoadProfile("Beauty-S");
  const TrainOptions train = BenchTrainOptions();
  struct Point {
    std::string name;
    Real warm;
    Real cold;
  };
  std::vector<Point> points;
  for (const ModelInfo& info : AllModels()) {
    auto model = CreateModel(info.name);
    const ProtocolResult result =
        RunStrictColdProtocol(model.get(), dataset, train);
    points.push_back({info.name, 100.0 * result.warm.metrics.mrr,
                      100.0 * result.cold.metrics.mrr});
    std::fprintf(stderr, "  [%s] done\n", info.name.c_str());
  }

  TablePrinter table({"Method", "Warm M@20 (x)", "Cold M@20 (y)"});
  for (const Point& p : points) {
    table.BeginRow();
    table.AddCell(p.name);
    table.AddCell(p.warm);
    table.AddCell(p.cold);
  }
  table.Print();

  // ASCII scatter, 48x16 grid.
  Real max_warm = 1e-9;
  Real max_cold = 1e-9;
  for (const Point& p : points) {
    max_warm = std::max(max_warm, p.warm);
    max_cold = std::max(max_cold, p.cold);
  }
  const int width = 48;
  const int height = 16;
  std::vector<std::string> grid(height, std::string(width, ' '));
  for (size_t i = 0; i < points.size(); ++i) {
    const int x = std::min<int>(
        width - 1, static_cast<int>(points[i].warm / max_warm * (width - 1)));
    const int y = std::min<int>(
        height - 1,
        static_cast<int>(points[i].cold / max_cold * (height - 1)));
    const char mark = points[i].name == "Firzen" ? '*' : 'a' + (i % 26);
    grid[static_cast<size_t>(height - 1 - y)][static_cast<size_t>(x)] = mark;
  }
  std::printf("\ncold M@20 ^ ('*' = Firzen; top-right is best)\n");
  for (const std::string& row : grid) std::printf("  |%s\n", row.c_str());
  std::printf("  +%s> warm M@20\n", std::string(width, '-').c_str());
  for (size_t i = 0; i < points.size(); ++i) {
    std::printf("  %c = %s\n",
                points[i].name == "Firzen" ? '*'
                                           : static_cast<char>('a' + (i % 26)),
                points[i].name.c_str());
  }
  return 0;
}
