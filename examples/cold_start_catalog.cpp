// Scenario: an e-commerce catalog receives a batch of brand-new products
// (strict cold items — no interactions anywhere). We train Firzen on the
// historical catalog, then rank the NEW items for a few users and show how
// the frozen item-item graphs fire the cold items from their warm neighbors.
//
//   ./build/examples/cold_start_catalog
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/core/firzen_model.h"
#include "src/data/synthetic.h"
#include "src/eval/evaluator.h"
#include "src/eval/serving.h"
#include "src/util/logging.h"

int main() {
  using namespace firzen;  // NOLINT(build/namespaces)
  SetLogLevel(LogLevel::kWarning);

  Dataset dataset = GenerateSyntheticDataset(CellPhonesSConfig(0.4));
  const std::vector<Index> cold_items = dataset.ColdItems();
  std::printf("catalog: %lld products, %zu just arrived (strict cold)\n",
              static_cast<long long>(dataset.num_items), cold_items.size());

  FirzenModel model;
  TrainOptions train;
  train.embedding_dim = 32;
  train.epochs = 15;
  train.eval_every = 5;
  train.pool = ThreadPool::Global();
  model.Fit(dataset, train);

  // New items arrive: rebuild the frozen inference graphs. Warm items are
  // isolated from the newcomers (Eq. 34 mask) so existing recommendations
  // stay stable, while newcomers inherit signal from similar warm products.
  model.PrepareColdInference(dataset);

  // Rank the new arrivals for the first few users with cold ground truth.
  std::vector<Index> demo_users;
  for (const Interaction& x : dataset.cold_test) {
    if (demo_users.size() >= 3) break;
    if (std::find(demo_users.begin(), demo_users.end(), x.user) ==
        demo_users.end()) {
      demo_users.push_back(x.user);
    }
  }
  // The ServingEngine streams item blocks through the model's Scorer and
  // ranks on the fly — no user x catalog score matrix, whatever the catalog
  // size. `cold_only` restricts a request to the new-arrivals shelf.
  ServingEngine engine(&model, dataset);
  std::vector<RecRequest> requests;
  for (Index user : demo_users) {
    RecRequest request;
    request.user = user;
    request.k = 5;
    request.cold_only = true;
    request.exclusion = ExclusionPolicy::kNone;  // cold items are unseen
    requests.push_back(std::move(request));
  }
  for (const RecResponse& response : engine.RecommendBatch(requests)) {
    std::printf("user %lld -> new arrivals: ",
                static_cast<long long>(response.user));
    for (const Recommendation& rec : response.items) {
      std::printf("%lld(%.3f) ", static_cast<long long>(rec.item), rec.score);
    }
    std::printf("\n");
  }

  // How good are these rankings? Evaluate against held-out cold truth using
  // the same block-streaming scorer.
  EvalOptions eval_options;
  eval_options.pool = train.pool;
  const EvalResult cold = EvaluateRanking(dataset, dataset.cold_test,
                                          EvalSetting::kCold,
                                          *model.MakeScorer(), eval_options);
  std::printf("strict cold-start quality: %s\n",
              FormatEvalResult(cold).c_str());
  return 0;
}
