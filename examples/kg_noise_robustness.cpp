// Scenario: your product knowledge graph is scraped and noisy — duplicate
// facts, phantom brands, mislabeled categories. This example injects each
// noise type (paper §IV-E) and shows Firzen's degradation staying mild.
//
//   ./build/examples/kg_noise_robustness
#include <cstdio>

#include "src/core/firzen_model.h"
#include "src/data/noise.h"
#include "src/data/synthetic.h"
#include "src/eval/serving.h"
#include "src/models/registry.h"
#include "src/util/logging.h"
#include "src/util/table_printer.h"

int main() {
  using namespace firzen;  // NOLINT(build/namespaces)
  SetLogLevel(LogLevel::kWarning);

  const Dataset clean = GenerateSyntheticDataset(BeautySConfig(0.35));
  TrainOptions train;
  train.embedding_dim = 32;
  train.epochs = 12;
  train.eval_every = 4;
  train.pool = ThreadPool::Global();

  auto run = [&](const Dataset& dataset, FirzenModel* model) {
    return RunStrictColdProtocol(model, dataset, train);
  };

  FirzenModel clean_model;
  const ProtocolResult base = run(clean, &clean_model);
  TablePrinter table({"KG condition", "Cold M@20", "Warm M@20", "HM M@20",
                      "HM drop vs clean (%)"});
  auto add_row = [&](const char* name, const ProtocolResult& r) {
    table.BeginRow();
    table.AddCell(name);
    table.AddCell(100.0 * r.cold.metrics.mrr);
    table.AddCell(100.0 * r.warm.metrics.mrr);
    table.AddCell(100.0 * r.hm.mrr);
    const Real drop = base.hm.mrr > 0
                          ? 100.0 * (base.hm.mrr - r.hm.mrr) / base.hm.mrr
                          : 0.0;
    table.AddCell(drop);
  };
  add_row("clean", base);

  Rng rng(99);
  for (KgNoiseKind kind : {KgNoiseKind::kOutlier, KgNoiseKind::kDuplicate,
                           KgNoiseKind::kDiscrepancy}) {
    Dataset noisy = clean;
    noisy.kg = InjectKgNoise(clean.kg, kind, /*rate=*/0.2, &rng);
    FirzenModel model;
    add_row(KgNoiseKindName(kind), run(noisy, &model));
  }
  table.Print();

  // Serving sanity probe: the cold shelf still fires after the protocol's
  // cold-inference rebuild (the engine mints its scorer from that state).
  ServingEngine engine(&clean_model, clean);
  RecRequest request;
  request.user = 0;
  request.k = 3;
  request.cold_only = true;
  request.exclusion = ExclusionPolicy::kNone;
  const RecResponse shelf = engine.Recommend(request);
  std::printf("clean-KG cold shelf for user 0:");
  for (const Recommendation& rec : shelf.items) {
    std::printf(" %lld(%.3f)", static_cast<long long>(rec.item), rec.score);
  }
  std::printf("\n");
  return 0;
}
