// Quickstart: generate a small synthetic benchmark, train Firzen, and
// evaluate it under both the warm-start and the strict cold-start protocol.
//
//   ./build/examples/quickstart
//
// This is the 60-second tour of the public API:
//   GenerateSyntheticDataset -> FirzenModel::Fit -> RunStrictColdProtocol.
#include <cstdio>
#include <thread>
#include <vector>

#include "src/core/firzen_model.h"
#include "src/data/synthetic.h"
#include "src/eval/admission.h"
#include "src/eval/serving.h"
#include "src/models/registry.h"
#include "src/util/logging.h"
#include "src/util/table_printer.h"

int main() {
  using namespace firzen;  // NOLINT(build/namespaces)
  SetLogLevel(LogLevel::kInfo);

  // 1. Build a small Amazon-Beauty-like benchmark (strict cold split,
  //    text/image features, knowledge graph) — see data/synthetic.h.
  SyntheticConfig config = BeautySConfig(/*scale=*/0.4);
  Dataset dataset = GenerateSyntheticDataset(config);
  std::printf("dataset %s: %lld users, %lld items (%zu cold), %zu train\n",
              dataset.name.c_str(), static_cast<long long>(dataset.num_users),
              static_cast<long long>(dataset.num_items),
              dataset.ColdItems().size(), dataset.train.size());

  // 2. Configure and train Firzen.
  FirzenOptions firzen_options;  // paper defaults: lambda_k=.36, lambda_m=1.1
  FirzenModel model(firzen_options);

  TrainOptions train;
  train.embedding_dim = 32;
  train.epochs = 20;
  train.eval_every = 5;
  train.verbose = true;
  train.pool = ThreadPool::Global();

  // 3. Run the paper's full protocol: warm test -> cold expansion -> cold
  //    test -> harmonic mean.
  const ProtocolResult result = RunStrictColdProtocol(&model, dataset, train);

  TablePrinter table({"Setting", "R@20", "M@20", "N@20", "H@20", "P@20"});
  auto add = [&table](const char* name, const MetricBundle& m) {
    table.BeginRow();
    table.AddCell(name);
    table.AddCell(100.0 * m.recall);
    table.AddCell(100.0 * m.mrr);
    table.AddCell(100.0 * m.ndcg);
    table.AddCell(100.0 * m.hit);
    table.AddCell(100.0 * m.precision);
  };
  add("Cold", result.cold.metrics);
  add("Warm", result.warm.metrics);
  add("HM", result.hm);
  table.Print();
  std::printf("fit took %.1fs; modality importances (beta): text=%.3f image=%.3f\n",
              result.fit_seconds, model.betas()[0], model.betas()[1]);

  // 4. Serve live top-K through the block-streaming engine: scores stream
  //    in bounded item panels fused with ranking, so serving memory does
  //    not grow with the catalog. Train-seen items are excluded by default.
  //    The engine is thread-safe — ONE shared instance answers concurrent
  //    request threads (per-thread scoring scratch lives in pooled arenas),
  //    which is the production pattern: never mint one engine per thread.
  ServingEngine engine(&model, dataset);
  RecRequest request;
  request.user = 0;
  request.k = 5;
  const RecResponse response = engine.Recommend(request);
  std::printf("user 0 top-5: ");
  for (const Recommendation& rec : response.items) {
    std::printf("%lld(%.3f) ", static_cast<long long>(rec.item), rec.score);
  }
  std::printf("\n");

  // Concurrent request threads against the same engine, coalesced by an
  // admission controller: concurrent singles fuse into one batched
  // scoring pass (one catalog stream instead of one per request). The
  // answers are bit-identical to serial, un-fused calls no matter how the
  // threads interleave or which requests share a fused batch — scores are
  // batch-size-invariant. Drop the AttachAdmission line to serve the same
  // traffic unbatched.
  const AdmissionController admission(&engine);
  engine.AttachAdmission(&admission);
  std::vector<RecResponse> concurrent(4);
  std::vector<std::thread> servers;
  for (Index u = 0; u < 4; ++u) {
    servers.emplace_back([&engine, &concurrent, u] {
      RecRequest r;
      r.user = u;
      r.k = 3;
      concurrent[static_cast<size_t>(u)] = engine.Recommend(r);
    });
  }
  for (std::thread& t : servers) t.join();
  engine.AttachAdmission(nullptr);
  for (const RecResponse& res : concurrent) {
    std::printf("user %lld top-3 (served concurrently): ",
                static_cast<long long>(res.user));
    for (const Recommendation& rec : res.items) {
      std::printf("%lld(%.3f) ", static_cast<long long>(rec.item), rec.score);
    }
    std::printf("\n");
  }
  std::printf("admission coalesced %llu requests into %llu fused batches\n",
              static_cast<unsigned long long>(admission.admitted_requests()),
              static_cast<unsigned long long>(admission.fused_batches()));
  return 0;
}
