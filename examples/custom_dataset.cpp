// Bring-your-own-data walkthrough: writes a tiny dataset to TSV files (the
// formats documented in data/io.h), loads it back, assembles a Dataset with
// a strict cold split, and trains Firzen on it.
//
//   ./build/examples/custom_dataset
#include <cstdio>

#include "src/core/firzen_model.h"
#include "src/data/io.h"
#include "src/data/split.h"
#include "src/data/synthetic.h"
#include "src/eval/serving.h"
#include "src/models/registry.h"
#include "src/util/logging.h"

int main() {
  using namespace firzen;  // NOLINT(build/namespaces)
  SetLogLevel(LogLevel::kWarning);

  // --- Pretend this synthetic world is "your" data, exported to TSV ---
  const Dataset source = GenerateSyntheticDataset(BeautySConfig(0.25));
  std::vector<Interaction> all;
  for (const auto* split : {&source.train, &source.warm_val,
                            &source.warm_test, &source.cold_val,
                            &source.cold_test}) {
    all.insert(all.end(), split->begin(), split->end());
  }
  const char* inter_path = "/tmp/firzen_demo_interactions.tsv";
  const char* text_path = "/tmp/firzen_demo_text.tsv";
  const char* image_path = "/tmp/firzen_demo_image.tsv";
  const char* kg_path = "/tmp/firzen_demo_kg.tsv";
  if (!SaveInteractionsTsv(inter_path, all).ok() ||
      !SaveFeaturesTsv(text_path, source.modalities[0].features).ok() ||
      !SaveFeaturesTsv(image_path, source.modalities[1].features).ok() ||
      !SaveKgTsv(kg_path, source.kg).ok()) {
    std::fprintf(stderr, "failed to write demo TSVs\n");
    return 1;
  }

  // --- Load it back the way a downstream user would ---
  auto interactions = LoadInteractionsTsv(inter_path);
  auto text = LoadFeaturesTsv(text_path, source.num_items);
  auto image = LoadFeaturesTsv(image_path, source.num_items);
  auto kg = LoadKgTsv(kg_path, source.num_items, source.kg.num_entities,
                      source.kg.num_relations);
  if (!interactions.ok() || !text.ok() || !image.ok() || !kg.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 interactions.ok() ? "features/kg" : interactions.status()
                                                         .ToString()
                                                         .c_str());
    return 1;
  }

  Dataset dataset;
  dataset.name = "custom";
  dataset.num_users = source.num_users;
  dataset.num_items = source.num_items;
  dataset.modalities.push_back({"text", std::move(text.value())});
  dataset.modalities.push_back({"image", std::move(image.value())});
  dataset.kg = std::move(kg.value());

  // Strict cold split on the raw interactions (paper §IV-A.1 arrangement).
  SplitOptions split_options;
  Rng rng(7);
  ApplyStrictColdSplit(interactions.value(), split_options, &rng, &dataset);
  dataset.CheckValid();
  std::printf("loaded custom dataset: %zu interactions, %zu cold items\n",
              interactions.value().size(), dataset.ColdItems().size());

  FirzenModel model;
  TrainOptions train;
  train.embedding_dim = 32;
  train.epochs = 10;
  train.eval_every = 5;
  train.pool = ThreadPool::Global();
  const ProtocolResult result = RunStrictColdProtocol(&model, dataset, train);
  std::printf("cold: %s\nwarm: %s\n", FormatEvalResult(result.cold).c_str(),
              FormatEvalResult(result.warm).c_str());

  // Serve one live request against your freshly trained model. Training
  // interactions are excluded by default; pass an explicit candidate pool
  // to rank a merchandised shelf instead.
  ServingEngine engine(&model, dataset);
  RecRequest request;
  request.user = 0;
  request.k = 5;
  const RecResponse response = engine.Recommend(request);
  std::printf("user 0 top-5:");
  for (const Recommendation& rec : response.items) {
    std::printf(" %lld(%.3f)", static_cast<long long>(rec.item), rec.score);
  }
  std::printf("\n");
  return 0;
}
